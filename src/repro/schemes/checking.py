"""TS with checking ("simple checking", Wu et al.) — the uplink-hungry
baseline of the paper's evaluation.

The server broadcasts plain ``IR(w)``.  A client reconnecting beyond the
window uploads the ids and timestamps of its *entire* cache; the server
answers with a validity report (one bit per checked item), letting the
client keep still-valid entries.  The upload costs
``n_cached * (ceil(log2 N) + b_T)`` uplink bits — this is what Figures 6,
8, 10, 12, 14 charge against the scheme, and what sinks its throughput
when the uplink is narrow (Figures 15-16).
"""

from __future__ import annotations

from typing import List, Tuple

from ..reports.sizes import validity_report_bits
from ..reports.window import WindowReportCache, build_window_report
from .base import (
    ClientOutcome,
    ClientPolicy,
    Scheme,
    ServerPolicy,
    apply_window_report,
    effective_window_seconds,
)


class CheckingServerPolicy(ServerPolicy):
    """Plain window broadcasts plus a validity-answer service."""

    def __init__(self, params, db):
        self.params = params
        self.db = db
        self.checks_served = 0
        self._report_cache = WindowReportCache(db)

    def build_report(self, ctx, now: float):
        return build_window_report(
            self.db,
            now,
            effective_window_seconds(ctx, self.params),
            self.params.timestamp_bits,
            cache=self._report_cache,
        )

    def on_check_request(
        self, ctx, client_id: int, entries: List[Tuple[int, float]], now: float
    ) -> Tuple[List[int], float, float]:
        # An entry certified before db.origin_time (the restart instant
        # after a crash) predates everything this incarnation witnessed:
        # last_update was wiped, so the plain comparison would wrongly
        # vouch for it.  Conservatively invalidate such entries.
        floor = self.db.origin_time
        invalid = [
            item
            for item, ts in entries
            if ts < floor or self.db.last_update[item] > ts
        ]
        self.checks_served += 1
        return invalid, now, validity_report_bits(len(entries))


class CheckingClientPolicy(ClientPolicy):
    """Uploads the whole cache when the window does not cover the gap."""

    def __init__(self, params, client_id: int):
        self.params = params
        self.client_id = client_id
        self._check_pending = False

    def on_report(self, ctx, report) -> ClientOutcome:
        if self._check_pending:
            # The answer to our upload is still in flight; this report
            # cannot help (our Tlb predates its window).
            return ClientOutcome.PENDING
        if report.window_start <= ctx.tlb:  # covers(), inlined
            cache = ctx.cache
            # No-news certify (apply_window_report's fast path, inlined).
            if not cache.unreconciled and report.newest_ts <= cache.certified_floor:
                cache.certify(report.timestamp)
            else:
                apply_window_report(cache, report)
            ctx.tlb = report.timestamp
            return ClientOutcome.READY
        entries = [
            (entry.item, ctx.cache.effective_ts(entry))
            for entry in ctx.cache.entries()
        ]
        if not entries:
            # Nothing to salvage; resynchronize without uplink traffic.
            ctx.cache.certify(report.timestamp)
            ctx.tlb = report.timestamp
            return ClientOutcome.READY
        self._check_pending = True
        ctx.send_check_request(entries)
        return ClientOutcome.PENDING

    def on_validity_reply(self, ctx, invalid_items, certified_at: float):
        self._check_pending = False
        for item in invalid_items:
            ctx.cache.invalidate(item)
        ctx.cache.certify(certified_at)
        # Certified as of the server's evaluation instant; the next window
        # report covers everything after it.
        ctx.tlb = certified_at

    def on_reconnect(self, ctx, now: float):
        # A reply delivered while we dozed is lost on the air; without this
        # reset the client would wait for it forever.
        self._check_pending = False

    def on_validation_timeout(self, ctx, now: float) -> bool:
        """The checking upload (or its validity reply) was lost on the
        air: re-upload the current cache contents."""
        entries = [
            (entry.item, ctx.cache.effective_ts(entry))
            for entry in ctx.cache.entries()
        ]
        if not entries:
            return False
        ctx.send_check_request(entries)
        return True


CHECKING_SCHEME = Scheme(
    name="checking",
    server_factory=CheckingServerPolicy,
    client_factory=CheckingClientPolicy,
    description="TS window + full-cache validity checking on reconnect",
)
