"""Cache invalidation schemes: the paper's AFW/AAW and every baseline."""

from .aaw import AAW_SCHEME, AAWServerPolicy
from .afw import AFW_SCHEME, AFWServerPolicy, AdaptiveClientPolicy
from .at import AT_SCHEME, ATClientPolicy, ATServerPolicy
from .base import (
    ClientOutcome,
    ClientPolicy,
    PendingTlbBuffer,
    Scheme,
    ServerPolicy,
    apply_invalidation,
    apply_window_report,
    drop_unreconciled,
    reconcile_with_amnesic,
    reconcile_with_bitseq,
)
from .bs import BS_SCHEME, BSClientPolicy, BSServerPolicy
from .checking import CHECKING_SCHEME, CheckingClientPolicy, CheckingServerPolicy
from .gcore import GCORE_SCHEME, GCOREClientPolicy, GCOREServerPolicy, group_of
from .loss_adaptive import (
    LossAdaptationConfig,
    LossAdaptiveController,
    LossEstimator,
    consecutive_loss_tolerance,
    effective_window_intervals,
)
from .registry import (
    EVALUATED_SCHEMES,
    available_schemes,
    get_scheme,
    register_scheme,
)
from .session import ClientSession, SessionOutcome
from .sig import SIG_SCHEME, SIGClientPolicy, SIGServerPolicy
from .ts_nocheck import TS_SCHEME, TSClientPolicy, TSServerPolicy

__all__ = [
    "AAW_SCHEME",
    "AAWServerPolicy",
    "AFW_SCHEME",
    "AFWServerPolicy",
    "AT_SCHEME",
    "ATClientPolicy",
    "ATServerPolicy",
    "AdaptiveClientPolicy",
    "BS_SCHEME",
    "BSClientPolicy",
    "BSServerPolicy",
    "CHECKING_SCHEME",
    "CheckingClientPolicy",
    "CheckingServerPolicy",
    "ClientOutcome",
    "ClientPolicy",
    "ClientSession",
    "EVALUATED_SCHEMES",
    "GCORE_SCHEME",
    "GCOREClientPolicy",
    "GCOREServerPolicy",
    "LossAdaptationConfig",
    "LossAdaptiveController",
    "LossEstimator",
    "PendingTlbBuffer",
    "SIG_SCHEME",
    "SIGClientPolicy",
    "SIGServerPolicy",
    "Scheme",
    "ServerPolicy",
    "SessionOutcome",
    "TS_SCHEME",
    "TSClientPolicy",
    "TSServerPolicy",
    "apply_invalidation",
    "apply_window_report",
    "drop_unreconciled",
    "reconcile_with_amnesic",
    "reconcile_with_bitseq",
    "available_schemes",
    "consecutive_loss_tolerance",
    "effective_window_intervals",
    "get_scheme",
    "group_of",
    "register_scheme",
]
