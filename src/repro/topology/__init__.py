"""Multi-cell topologies: cell graphs and the roaming knob group.

One :class:`CellGraph` describes the fixed network joining the cells'
base stations (cell 0 is the gateway, colocated with the origin
database); :class:`RoamingConfig` bundles every multi-cell knob the
simulation reads.  The package is a leaf in the layering DAG: it knows
nothing about channels, servers or schemes.
"""

from .config import (
    EAGER_PUSH,
    LAZY_PULL,
    PARENT_CACHE,
    PROPAGATION_MODES,
    RoamingConfig,
    TopologyConfig,
)
from .graph import CellGraph

__all__ = [
    "CellGraph",
    "EAGER_PUSH",
    "LAZY_PULL",
    "PARENT_CACHE",
    "PROPAGATION_MODES",
    "RoamingConfig",
    "TopologyConfig",
]
