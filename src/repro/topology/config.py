"""The multi-cell knob group: topology shape + roaming/propagation knobs.

``SystemParams.roaming`` holds one :class:`RoamingConfig` (or None — the
single-cell seed behaviour, bit-identical to a run without the knob
group).  Validation happens here so every inconsistent combination dies
with a clear error before a simulation is built.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import CellGraph

#: Origin pushes every update (plus horizon heartbeats) to every cell.
EAGER_PUSH = "eager_push"
#: Every cell pulls a delta from the origin once per broadcast interval.
LAZY_PULL = "lazy_pull"
#: Cells pull from their tree parent; only depth-1 cells hit the origin.
PARENT_CACHE = "parent_cache"

PROPAGATION_MODES = (EAGER_PUSH, LAZY_PULL, PARENT_CACHE)

_TOPOLOGY_KINDS = ("path", "tree", "grid")


@dataclass(frozen=True)
class TopologyConfig:
    """Shape of the cell graph (see :class:`~repro.topology.CellGraph`).

    Attributes
    ----------
    kind:
        ``path``, ``tree`` or ``grid``.
    n_cells:
        Total cells; 1 means "today's single cell" and must be
        bit-identical to a run without any topology at all.
    branching:
        Fan-out per tree node (``tree`` only).
    grid_cols:
        Columns of the mesh (``grid`` only); rows follow from
        ``n_cells`` and must divide it evenly.
    link_latency:
        One-way latency of every inter-cell link, seconds.
    """

    kind: str = "path"
    n_cells: int = 1
    branching: int = 2
    grid_cols: int = 0
    link_latency: float = 0.05

    def __post_init__(self):
        if self.kind not in _TOPOLOGY_KINDS:
            raise ValueError(
                f"unknown topology kind {self.kind!r}; choose from {_TOPOLOGY_KINDS}"
            )
        if self.n_cells < 1:
            raise ValueError("n_cells must be >= 1")
        if self.link_latency <= 0:
            raise ValueError("link_latency must be positive")
        if self.kind == "tree" and self.branching < 1:
            raise ValueError("tree topologies need branching >= 1")
        if self.kind == "grid" and self.n_cells > 1:
            if self.grid_cols < 1:
                raise ValueError("grid topologies need grid_cols >= 1")
            if self.n_cells % self.grid_cols != 0:
                raise ValueError("grid_cols must divide n_cells evenly")

    def build(self) -> CellGraph:
        """Materialize the configured :class:`CellGraph`."""
        if self.n_cells == 1:
            return CellGraph(1, {})
        if self.kind == "path":
            return CellGraph.path(self.n_cells, self.link_latency)
        if self.kind == "tree":
            return CellGraph.tree(self.n_cells, self.branching, self.link_latency)
        return CellGraph.grid(
            self.n_cells // self.grid_cols, self.grid_cols, self.link_latency
        )


@dataclass(frozen=True)
class RoamingConfig:
    """Every knob the multi-cell layer reads (default: inert at N=1).

    Attributes
    ----------
    topology:
        The cell graph shape.
    propagation:
        Inter-server update propagation mode (one of
        :data:`PROPAGATION_MODES`).
    roam_prob:
        Probability that a client waking from a disconnection hands off
        to a random alive neighbor cell instead of staying put.
    link_loss_prob:
        Per-message loss probability on every inter-cell link (the wired
        backbone is reliable by default; lossy links exercise the sync
        retry/backoff path).
    sync_margin:
        Scheduling slack, seconds: how far ahead of each broadcast tick
        a cell aims to finish its sync round, and the grace added to
        every sync-reply timeout.
    max_sync_retries:
        Retransmissions of one sync pull (or cooperative-salvage ask)
        after the first attempt before the round is abandoned.
    sync_backoff:
        Exponential backoff multiplier on the sync-reply timeout.
    sync_replay_intervals:
        Depth of the feed's replayable update log, in broadcast
        intervals.  A cell whose knowledge horizon falls further behind
        than this (a restarted replica, a long link outage) receives a
        version *snapshot* with a raised history floor instead of a
        seamless delta — the multi-cell analogue of the PR 4 restart
        floor, and the gap cooperative salvage exists to fill.
    cooperative_salvage:
        When True, a cell facing a ``Tlb``/check older than its own
        history floor asks neighbor cells to backfill the missing
        update history before answering, instead of forcing the roamer
        into a full purge.
    """

    topology: TopologyConfig = TopologyConfig()
    propagation: str = LAZY_PULL
    roam_prob: float = 0.0
    link_loss_prob: float = 0.0
    sync_margin: float = 1.0
    max_sync_retries: int = 3
    sync_backoff: float = 2.0
    sync_replay_intervals: float = 50.0
    cooperative_salvage: bool = True

    def __post_init__(self):
        if not isinstance(self.topology, TopologyConfig):
            raise ValueError("topology must be a TopologyConfig")
        if self.propagation not in PROPAGATION_MODES:
            raise ValueError(
                f"unknown propagation mode {self.propagation!r}; "
                f"choose from {PROPAGATION_MODES}"
            )
        if not 0.0 <= self.roam_prob <= 1.0:
            raise ValueError("roam_prob must be in [0, 1]")
        if not 0.0 <= self.link_loss_prob < 1.0:
            raise ValueError("link_loss_prob must be in [0, 1)")
        if self.sync_margin <= 0:
            raise ValueError("sync_margin must be positive")
        if self.max_sync_retries < 0:
            raise ValueError("max_sync_retries must be >= 0")
        if self.sync_backoff < 1.0:
            raise ValueError("sync_backoff must be >= 1")
        if self.sync_replay_intervals <= 0:
            raise ValueError("sync_replay_intervals must be positive")

    @property
    def n_cells(self) -> int:
        """Cell count, straight from the topology."""
        return self.topology.n_cells
