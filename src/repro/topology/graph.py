"""Cell graphs: the wired backbone joining the cells' base stations.

A :class:`CellGraph` is a small undirected graph with one per-link
latency.  Cell 0 is always the *gateway* — the cell whose base station
is colocated with the origin database — so every graph must be connected
and rooted there.  Shortest paths (by latency) toward the gateway give
each cell a parent and a depth; the hierarchical parent-cache
propagation mode syncs along exactly that tree.

The three builders (path, tree, grid) mirror the classic cache-network
scenario shapes; all number cells so that a cell's parent always has a
smaller id, which lets the simulation wire feeds in plain id order.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Tuple


class CellGraph:
    """An undirected cell graph with per-link latencies, rooted at cell 0.

    Parameters
    ----------
    n_cells:
        Number of cells; ids are ``0..n_cells-1``.
    links:
        ``{(a, b): latency_seconds}`` with ``a < b``; the graph must be
        connected.
    """

    def __init__(self, n_cells: int, links: Mapping[Tuple[int, int], float]):
        if n_cells < 1:
            raise ValueError("a topology needs at least one cell")
        self.n_cells = int(n_cells)
        normalized: Dict[Tuple[int, int], float] = {}
        adjacency: Dict[int, Dict[int, float]] = {c: {} for c in range(n_cells)}
        for (a, b), latency in links.items():
            if not (0 <= a < n_cells and 0 <= b < n_cells):
                raise ValueError(f"link ({a}, {b}) outside the cell range")
            if a == b:
                raise ValueError(f"self-link on cell {a}")
            if latency <= 0:
                raise ValueError(f"link ({a}, {b}) needs a positive latency")
            key = (a, b) if a < b else (b, a)
            if key in normalized:
                raise ValueError(f"duplicate link {key}")
            normalized[key] = float(latency)
            adjacency[a][b] = float(latency)
            adjacency[b][a] = float(latency)
        self.links = normalized
        self._adjacency = adjacency
        self._neighbors = {
            cell: tuple(sorted(adjacency[cell])) for cell in range(n_cells)
        }
        self._dist, self._parent, self._depth = self._shortest_paths_to_gateway()
        self.max_depth = max(self._depth.values())

    def _shortest_paths_to_gateway(self):
        """Dijkstra from cell 0; ties break toward the lower parent id."""
        dist = {0: 0.0}
        parent: Dict[int, int] = {0: 0}
        depth = {0: 0}
        frontier: List[Tuple[float, int, int, int]] = [(0.0, 0, 0, 0)]
        while frontier:
            d, hops, via, cell = heapq.heappop(frontier)
            if d > dist.get(cell, float("inf")):
                continue
            for nxt, latency in self._adjacency[cell].items():
                nd = d + latency
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    parent[nxt] = cell
                    depth[nxt] = hops + 1
                    heapq.heappush(frontier, (nd, hops + 1, cell, nxt))
        if len(dist) != self.n_cells:
            missing = sorted(set(range(self.n_cells)) - set(dist))
            raise ValueError(f"cells {missing} are unreachable from the gateway")
        return dist, parent, depth

    def __repr__(self):
        return f"<CellGraph n={self.n_cells} links={len(self.links)}>"

    def neighbors(self, cell: int) -> Tuple[int, ...]:
        """Directly linked cells, in ascending id order."""
        return self._neighbors[cell]

    def link_latency(self, a: int, b: int) -> float:
        """Latency of the direct link between *a* and *b*."""
        key = (a, b) if a < b else (b, a)
        try:
            return self.links[key]
        except KeyError:
            raise ValueError(f"cells {a} and {b} are not directly linked")

    def parent_of(self, cell: int) -> int:
        """First hop of *cell*'s shortest path toward the gateway."""
        return self._parent[cell]

    def depth(self, cell: int) -> int:
        """Hop count of *cell*'s shortest path to the gateway."""
        return self._depth[cell]

    def gateway_latency(self, cell: int) -> float:
        """Total latency of *cell*'s shortest path to the gateway."""
        return self._dist[cell]

    # -- builders --------------------------------------------------------------

    @classmethod
    def path(cls, n_cells: int, link_latency: float) -> "CellGraph":
        """A chain ``0 - 1 - ... - (n-1)``."""
        links = {(i, i + 1): link_latency for i in range(n_cells - 1)}
        return cls(n_cells, links)

    @classmethod
    def tree(cls, n_cells: int, branching: int, link_latency: float) -> "CellGraph":
        """A complete-ish tree rooted at the gateway.

        Cell ``i``'s parent is ``(i - 1) // branching`` (breadth-first
        numbering), so parents always carry smaller ids.
        """
        if branching < 1:
            raise ValueError("tree branching must be >= 1")
        links = {((i - 1) // branching, i): link_latency for i in range(1, n_cells)}
        return cls(n_cells, links)

    @classmethod
    def grid(cls, rows: int, cols: int, link_latency: float) -> "CellGraph":
        """A ``rows x cols`` mesh; cell id is ``r * cols + c``."""
        if rows < 1 or cols < 1:
            raise ValueError("grid needs at least one row and one column")
        links = {}
        for r in range(rows):
            for c in range(cols):
                cell = r * cols + c
                if c + 1 < cols:
                    links[(cell, cell + 1)] = link_latency
                if r + 1 < rows:
                    links[(cell, cell + cols)] = link_latency
        return cls(rows * cols, links)
