"""Deterministic chaos schedules: seeded endpoint-failure plans.

A :class:`ChaosConfig` names the failure processes to inject into one
simulated cell — server crash/restart cycles, client crashes (cache +
``Tlb`` loss) and per-client clock skew/drift — and a
:class:`ChaosSchedule` expands the config into a concrete, fully
deterministic event plan *before the simulation starts*.

Determinism contract: the plan is a pure function of
``(config, horizon, n_clients, n_cells, master seed)``.  Every random draw comes
from named :class:`~repro.des.RandomStreams` streams salted with
``config.seed`` (``chaos/<seed>/...``), so

* the same seeds reproduce the same campaign bit-for-bit,
* chaos draws never perturb the simulation's own streams (common random
  numbers across chaos on/off comparisons), and
* ``config.seed`` varies the failure plan independently of the
  workload seed — a campaign matrix is ``seeds x failure modes``.

Explicit schedules (``server_crashes_at`` / ``client_crashes_at``) skip
the sampling entirely for scripted differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Floor on sampled downtimes: a restart in the same instant as its crash
#: would be invisible to every protocol layer.
MIN_DOWNTIME = 1e-6


@dataclass(frozen=True)
class ChaosConfig:
    """Knob group describing one chaos campaign (all injections off by
    default; see docs/FAULTS.md for the knob-by-knob guide).

    Attributes
    ----------
    seed:
        Salt for the chaos random streams; independent of the simulation
        seed so failure plans can be varied (or held fixed) on their own.
    server_crash_mtbf:
        Mean seconds between server crashes (exponential).  0 disables
        sampled server crashes.
    server_downtime_mean:
        Mean seconds a crashed server stays down (exponential).
    server_crashes_at:
        Explicit crash instants (overrides ``server_crash_mtbf``); each
        crash lasts ``server_downtime`` seconds.
    server_downtime:
        Fixed downtime used with ``server_crashes_at``.
    client_crash_mtbf:
        Per-client mean seconds between crashes (exponential).  A client
        crash is instantaneous: the cache and ``Tlb`` are lost, the
        process reboots immediately.  0 disables sampled client crashes.
    client_crashes_at:
        Explicit ``(client_id, time)`` crash instants (in addition to any
        sampled ones).
    cell_crash_mtbf:
        Per-cell mean seconds between whole-cell outages (exponential).
        A cell outage crashes the cell's server *and* evacuates its
        clients to surviving neighbor cells (multi-cell runs only —
        requires ``SystemParams.roaming``).  0 disables sampled outages.
    cell_downtime_mean:
        Mean seconds a crashed cell stays down (exponential).
    cell_crashes_at:
        Explicit ``(cell_id, time)`` outage instants (overrides
        ``cell_crash_mtbf``); each outage lasts ``cell_downtime``.
    cell_downtime:
        Fixed downtime used with ``cell_crashes_at``.
    clock_skew_max:
        Per-client clock offset drawn uniformly from ``[-max, +max]``
        seconds.  Protocol timestamps originate at the server, so skew
        shows up as a phase offset of the client's local activity.
    clock_drift_max:
        Per-client clock *rate* error drawn uniformly from
        ``[-max, +max]`` (fractional); local durations (think times,
        backoff timers) are scaled by ``1 + drift``.
    """

    seed: int = 0
    server_crash_mtbf: float = 0.0
    server_downtime_mean: float = 60.0
    server_crashes_at: Tuple[float, ...] = ()
    server_downtime: float = 60.0
    client_crash_mtbf: float = 0.0
    client_crashes_at: Tuple[Tuple[int, float], ...] = ()
    cell_crash_mtbf: float = 0.0
    cell_downtime_mean: float = 120.0
    cell_crashes_at: Tuple[Tuple[int, float], ...] = ()
    cell_downtime: float = 120.0
    clock_skew_max: float = 0.0
    clock_drift_max: float = 0.0

    def __post_init__(self):
        for name in (
            "server_crash_mtbf",
            "server_downtime_mean",
            "server_downtime",
            "client_crash_mtbf",
            "cell_crash_mtbf",
            "cell_downtime_mean",
            "cell_downtime",
            "clock_skew_max",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.clock_drift_max < 1.0:
            raise ValueError("clock_drift_max must be in [0, 1)")
        for at in self.server_crashes_at:
            if at <= 0:
                raise ValueError("server crash times must be positive")
        for cid, at in self.client_crashes_at:
            if cid < 0 or at <= 0:
                raise ValueError("client crashes need id >= 0 and time > 0")
        for cell, at in self.cell_crashes_at:
            if cell < 0 or at <= 0:
                raise ValueError("cell outages need cell >= 0 and time > 0")

    @property
    def crashes_server(self) -> bool:
        """Whether this campaign ever takes the server down."""
        return self.server_crash_mtbf > 0 or bool(self.server_crashes_at)

    @property
    def crashes_clients(self) -> bool:
        """Whether this campaign ever crashes a client."""
        return self.client_crash_mtbf > 0 or bool(self.client_crashes_at)

    @property
    def crashes_cells(self) -> bool:
        """Whether this campaign ever takes a whole cell down."""
        return self.cell_crash_mtbf > 0 or bool(self.cell_crashes_at)

    @property
    def skews_clocks(self) -> bool:
        """Whether per-client clock models are active."""
        return self.clock_skew_max > 0 or self.clock_drift_max > 0

    @property
    def is_null(self) -> bool:
        """True when the config injects nothing at all."""
        return not (
            self.crashes_server
            or self.crashes_clients
            or self.crashes_cells
            or self.skews_clocks
        )


@dataclass(frozen=True)
class ClockModel:
    """One client's clock error: constant skew plus a rate drift.

    ``skew`` offsets the client's local timeline (its activity starts
    that much later — a negative skew cannot move activity before t=0,
    so it clamps to an on-time start); ``rate`` scales every locally
    timed duration (``1.0`` = a perfect clock).
    """

    skew: float = 0.0
    rate: float = 1.0

    def local_duration(self, seconds: float) -> float:
        """Real seconds consumed by a locally timed *seconds* wait."""
        return seconds * self.rate

    @property
    def start_offset(self) -> float:
        """Real seconds the client's first activity lags t=0."""
        return self.skew if self.skew > 0.0 else 0.0


@dataclass(frozen=True)
class ChaosSchedule:
    """The concrete event plan one :class:`ChaosConfig` expands into.

    Attributes
    ----------
    server_outages:
        ``(crash_at, restart_at)`` pairs, increasing and non-overlapping,
        all within the horizon (restarts may be clipped to the horizon —
        such a final outage simply never ends on-stage).
    client_crashes:
        ``(time, client_id)`` pairs in time order.
    cell_outages:
        ``(crash_at, restart_at, cell_id)`` triples in time order;
        per-cell they are increasing and non-overlapping, clipped to the
        horizon like server outages.
    clocks:
        Per-client :class:`ClockModel` (index = client id).
    """

    config: ChaosConfig
    horizon: float
    server_outages: Tuple[Tuple[float, float], ...]
    client_crashes: Tuple[Tuple[float, int], ...]
    clocks: Tuple[ClockModel, ...] = field(default=())
    cell_outages: Tuple[Tuple[float, float, int], ...] = ()

    @classmethod
    def build(
        cls,
        config: ChaosConfig,
        horizon: float,
        n_clients: int,
        streams,
        n_cells: int = 1,
    ) -> "ChaosSchedule":
        """Expand *config* into a deterministic plan.

        *streams* is the simulation's :class:`~repro.des.RandomStreams`;
        every draw uses streams salted with ``config.seed`` so the plan
        never consumes draws any other component sees.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if n_clients < 1:
            raise ValueError("need at least one client")
        prefix = f"chaos/{config.seed}"
        outages: List[Tuple[float, float]] = []
        if config.server_crashes_at:
            down = max(config.server_downtime, MIN_DOWNTIME)
            t_prev = 0.0
            for at in sorted(config.server_crashes_at):
                if at >= horizon or at < t_prev:
                    continue  # clipped or overlapping a previous outage
                restart = min(at + down, horizon)
                outages.append((at, restart))
                t_prev = restart
        elif config.server_crash_mtbf > 0:
            stream = streams.stream(f"{prefix}/server")
            t = stream.exponential(config.server_crash_mtbf)
            while t < horizon:
                down = max(
                    stream.exponential(config.server_downtime_mean), MIN_DOWNTIME
                )
                restart = min(t + down, horizon)
                outages.append((t, restart))
                t = restart + stream.exponential(config.server_crash_mtbf)
        cell_outages: List[Tuple[float, float, int]] = []
        if config.cell_crashes_at:
            down = max(config.cell_downtime, MIN_DOWNTIME)
            busy_until: dict = {}
            for cell, at in sorted(config.cell_crashes_at, key=lambda x: (x[1], x[0])):
                if cell >= n_cells or at >= horizon or at < busy_until.get(cell, 0.0):
                    continue  # clipped or overlapping that cell's previous outage
                restart = min(at + down, horizon)
                cell_outages.append((at, restart, cell))
                busy_until[cell] = restart
        elif config.cell_crash_mtbf > 0:
            for cell in range(n_cells):
                stream = streams.stream(f"{prefix}/cell-{cell}")
                t = stream.exponential(config.cell_crash_mtbf)
                while t < horizon:
                    down = max(
                        stream.exponential(config.cell_downtime_mean), MIN_DOWNTIME
                    )
                    restart = min(t + down, horizon)
                    cell_outages.append((t, restart, cell))
                    t = restart + stream.exponential(config.cell_crash_mtbf)
        cell_outages.sort()
        crashes: List[Tuple[float, int]] = []
        if config.client_crash_mtbf > 0:
            for cid in range(n_clients):
                stream = streams.stream(f"{prefix}/client-{cid}")
                t = stream.exponential(config.client_crash_mtbf)
                while t < horizon:
                    crashes.append((t, cid))
                    t += stream.exponential(config.client_crash_mtbf)
        for cid, at in config.client_crashes_at:
            if cid < n_clients and at < horizon:
                crashes.append((at, cid))
        crashes.sort()
        clocks: Tuple[ClockModel, ...] = ()
        if config.skews_clocks:
            stream = streams.stream(f"{prefix}/clocks")
            built = []
            for _cid in range(n_clients):
                skew = (
                    stream.uniform(-config.clock_skew_max, config.clock_skew_max)
                    if config.clock_skew_max > 0
                    else 0.0
                )
                drift = (
                    stream.uniform(-config.clock_drift_max, config.clock_drift_max)
                    if config.clock_drift_max > 0
                    else 0.0
                )
                built.append(ClockModel(skew=skew, rate=1.0 + drift))
            clocks = tuple(built)
        return cls(
            config=config,
            horizon=horizon,
            server_outages=tuple(outages),
            client_crashes=tuple(crashes),
            clocks=clocks,
            cell_outages=tuple(cell_outages),
        )

    def clock_for(self, client_id: int) -> Optional[ClockModel]:
        """The clock model for *client_id* (None = perfect clock)."""
        if not self.clocks:
            return None
        return self.clocks[client_id]
