"""The hard safety oracle: strict staleness and liveness accounting.

Two guarantees, promoted from telemetry to enforcement:

* **Safety** — under ``SystemParams.strict_staleness`` any stale cache
  hit (an answer the client's own certification history cannot justify)
  raises :class:`StalenessViolation` at the hit site, carrying the full
  diagnostic trace: which client, which item, the entry's provenance,
  the certifying knowledge (``Tlb``/floor), the server incarnation epoch
  the client was synchronized to, and the ground-truth update times that
  convict it.  The simulation dies loudly at the first unsafe answer
  instead of averaging it into a counter.
* **Liveness** — :func:`account_liveness` audits a finished run: every
  issued query was answered, abandoned with a recorded cause
  (``client.fetch_failures``), or still pending at the horizon — and at
  most one query per client can be pending.  A query that silently
  vanished (a hung waiter, a lost wakeup) breaks the balance.

This module is import-light (no :mod:`repro.sim` imports) so the client
actor can raise :class:`StalenessViolation` without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


class StalenessViolation(AssertionError):
    """A client answered a query from a provably stale cache entry.

    Raised only in strict mode; inherits :class:`AssertionError` because
    it marks a broken protocol invariant, not an operational error.
    """

    def __init__(
        self,
        *,
        client_id: int,
        item: int,
        entry_version: int,
        entry_ts: float,
        effective_ts: float,
        tlb: float,
        certified_floor: float,
        epoch: int,
        now: float,
        update_times: Sequence[float] = (),
    ):
        self.client_id = client_id
        self.item = item
        self.entry_version = entry_version
        self.entry_ts = entry_ts
        self.effective_ts = effective_ts
        self.tlb = tlb
        self.certified_floor = certified_floor
        self.epoch = epoch
        self.now = now
        self.update_times = tuple(update_times)
        convicting = ", ".join(f"{t:.3f}" for t in self.update_times) or "?"
        super().__init__(
            f"stale cache hit at t={now:.3f}: client {client_id} served item "
            f"{item} (version {entry_version}, coherent at {entry_ts:.3f}, "
            f"effective {effective_ts:.3f}) while certified up to "
            f"Tlb={tlb:.3f} (floor {certified_floor:.3f}, server epoch "
            f"{epoch}); ground truth updated it at [{convicting}]"
        )


@dataclass(frozen=True)
class LivenessReport:
    """Outcome of auditing one finished run's query accounting."""

    generated: int
    answered: int
    abandoned_fetches: int
    pending: int
    n_clients: int
    ok: bool
    reason: str = ""

    def __str__(self):
        verdict = "balanced" if self.ok else f"BROKEN ({self.reason})"
        return (
            f"liveness {verdict}: {self.generated} issued = "
            f"{self.answered} answered + {self.pending} pending "
            f"(<= {self.n_clients} clients; "
            f"{self.abandoned_fetches} fetches abandoned with cause)"
        )


def account_liveness(result, n_clients: int) -> LivenessReport:
    """Audit *result* (a ``SimulationResult``): no query may vanish.

    Each client issues queries strictly sequentially, so at the horizon
    ``generated - answered`` must be a whole number of in-flight queries
    in ``[0, n_clients]``.  Abandoned item fetches are *not* abandoned
    queries — a failed fetch leaves its item unserved but the query still
    terminates — so they are reported as a cause count, not subtracted.
    """
    generated = int(result.counter("queries.generated"))
    answered = int(result.counter("queries.answered"))
    abandoned = int(result.counter("client.fetch_failures"))
    pending = generated - answered
    ok = 0 <= pending <= n_clients
    reason = ""
    if pending < 0:
        reason = "more answers than issued queries"
    elif pending > n_clients:
        reason = (
            f"{pending} queries unanswered at the horizon but only "
            f"{n_clients} clients can hold one in flight"
        )
    return LivenessReport(
        generated=generated,
        answered=answered,
        abandoned_fetches=abandoned,
        pending=pending,
        n_clients=n_clients,
        ok=ok,
        reason=reason,
    )


def oracle_verdict(result, n_clients: Optional[int] = None) -> str:
    """One-token verdict for sweep/bench rows.

    ``SAFE`` — zero stale answers and (when ``n_clients`` is known or the
    run recorded its own liveness audit) a balanced query ledger;
    ``STALE(n)`` — n provably stale answers served;
    ``STUCK(p)`` — p queries beyond the per-client bound vanished.
    """
    stale = int(result.counter("cache.stale_hits"))
    if stale:
        return f"STALE({stale})"
    if n_clients is not None:
        if not account_liveness(result, n_clients).ok:
            pending = int(result.counter("queries.generated")) - int(
                result.counter("queries.answered")
            )
            return f"STUCK({pending})"
    elif result.raw.get("oracle.liveness_ok", 1.0) != 1.0:
        return f"STUCK({int(result.counter('oracle.queries_pending'))})"
    return "SAFE"
