"""Deterministic chaos injection and the hard safety oracle.

Seeded, fully reproducible endpoint-failure campaigns (server
crash–recovery with incarnation epochs, client crashes, clock
skew/drift) plus the oracle that proves the protocols survive them:
strict staleness (any stale cache hit raises with a diagnostic trace)
and liveness accounting (no issued query may silently vanish).

:class:`ChaosInjector` (in :mod:`repro.chaos.injector`) is deliberately
not exported here: it imports :mod:`repro.sim`, which imports this
package for :class:`ChaosConfig`; the model lazy-imports the injector.
"""

from .oracle import LivenessReport, StalenessViolation, account_liveness, oracle_verdict
from .outages import OutageSchedule
from .schedule import MIN_DOWNTIME, ChaosConfig, ChaosSchedule, ClockModel

__all__ = [
    "MIN_DOWNTIME",
    "ChaosConfig",
    "ChaosSchedule",
    "ClockModel",
    "LivenessReport",
    "OutageSchedule",
    "StalenessViolation",
    "account_liveness",
    "oracle_verdict",
]
