"""Drives a :class:`~repro.chaos.schedule.ChaosSchedule` against a live cell.

The injector owns the chaos-side plumbing so the simulation model stays
declarative: it expands the configured :class:`ChaosConfig` into a
deterministic plan, assigns per-client clock models, and runs (at most)
two DES processes — one walking the server outage plan, one walking the
client crash plan.  All protocol-level consequences live in the actors
themselves (``Server.crash``/``Server.restart``,
``MobileClient.crash``); the injector only decides *when*.

A server restart needs a fresh scheme policy (the crash discards the
old incarnation's report caches, combiners and salvage buffers), which
only the model can build — hence the injector is constructed with the
whole model, not just the environment.
"""

from __future__ import annotations

from ..sim import metrics as m
from .schedule import ChaosConfig, ChaosSchedule


class ChaosInjector:
    """Wires one chaos campaign into one built :class:`SimulationModel`."""

    def __init__(self, model, config: ChaosConfig):
        self.model = model
        self.config = config
        self.schedule = ChaosSchedule.build(
            config,
            horizon=model.params.simulation_time,
            n_clients=model.params.n_clients,
            streams=model.streams,
            n_cells=getattr(model, "n_cells", 1),
        )
        if self.schedule.clocks:
            for client in model.clients:
                client.set_clock(self.schedule.clock_for(client.client_id))
        env = model.env
        if self.schedule.server_outages:
            env.process(self._server_outages(), name="chaos-server")
        if self.schedule.client_crashes:
            env.process(self._client_crashes(), name="chaos-clients")
        if self.schedule.cell_outages:
            # One walker per cell: outages of different cells overlap
            # freely, a single cell's are sequential by construction.
            by_cell: dict = {}
            for crash_at, restart_at, cell in self.schedule.cell_outages:
                by_cell.setdefault(cell, []).append((crash_at, restart_at))
            for cell, plan in sorted(by_cell.items()):
                env.process(
                    self._cell_outages(cell, plan), name=f"chaos-cell-{cell}"
                )

    def _server_outages(self):
        env = self.model.env
        metrics = self.model.metrics
        for crash_at, restart_at in self.schedule.server_outages:
            if crash_at > env.now:
                yield env.sleep(crash_at - env.now)
            self.model.server.crash(env.now)
            metrics.counter(m.SERVER_CRASHES).add()
            if restart_at > env.now:
                yield env.sleep(restart_at - env.now)
            metrics.counter(m.SERVER_DOWNTIME).add(env.now - crash_at)
            if restart_at >= self.schedule.horizon:
                return  # the final outage never ends on-stage
            # The new incarnation rebuilds every piece of volatile policy
            # state (report caches, signature combiners, salvage buffers)
            # from the durable database.
            policy = self.model.scheme.make_server_policy(
                self.model.params, self.model.db
            )
            self.model.server.restart(env.now, policy)
            metrics.counter(m.SERVER_RESTARTS).add()

    def _client_crashes(self):
        env = self.model.env
        metrics = self.model.metrics
        for at, client_id in self.schedule.client_crashes:
            if at > env.now:
                yield env.sleep(at - env.now)
            # Look the victim up by id at crash time: the registry is a
            # dict (population aggregation may churn it between fires).
            self.model.client_by_id(client_id).crash(env.now)
            metrics.counter(m.CLIENT_CRASHES).add()

    def _cell_outages(self, cell, plan):
        """Walk one cell's outage plan (multi-cell models only: the
        crash/restart consequences — evacuation, replica resync — live
        in ``MultiCellModel.crash_cell`` / ``restart_cell``)."""
        env = self.model.env
        for crash_at, restart_at in plan:
            if crash_at > env.now:
                yield env.sleep(crash_at - env.now)
            self.model.crash_cell(cell, env.now)
            if restart_at > env.now:
                yield env.sleep(restart_at - env.now)
            if restart_at >= self.schedule.horizon:
                return  # the final outage never ends on-stage
            self.model.restart_cell(cell, env.now)
