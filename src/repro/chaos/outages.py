"""Scripted and seeded backend-outage schedules for the service tier.

Where :mod:`repro.chaos.schedule` plans endpoint failures *inside* the
simulated cell, an :class:`OutageSchedule` plans failures of the service
façade's dependencies — the IR broker feed and the L2 backend — as plain
down-time windows on the virtual (or wall) clock.  The fault-injecting
wrappers in :mod:`repro.service.faults` consult ``down_at(now)`` per
operation, so a schedule scripts exactly when the node must degrade,
ride out the outage on the paper's ``Tlb`` semantics, and salvage on
reconnect.

Determinism contract (same as the chaos schedules): a sampled plan is a
pure function of ``(seed, name, horizon, mtbf, downtime_mean)`` drawn
from a salted :class:`~repro.des.RandomStreams` stream
(``outage/<seed>/<name>``), so campaigns replay byte-identically.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence, Tuple

from ..des.rng import RandomStreams

__all__ = ["OutageSchedule"]

#: Floor on sampled downtimes (mirrors chaos.schedule.MIN_DOWNTIME).
_MIN_DOWNTIME = 1e-6


class OutageSchedule:
    """Half-open down-time windows ``[start, end)`` for one dependency."""

    __slots__ = ("name", "_starts", "_ends")

    def __init__(
        self, windows: Sequence[Tuple[float, float]] = (), name: str = "backend"
    ) -> None:
        cleaned: List[Tuple[float, float]] = []
        for start, end in sorted(windows):
            if end <= start:
                raise ValueError(f"empty outage window [{start}, {end})")
            if cleaned and start < cleaned[-1][1]:
                # Overlapping scripts merge: the union is what matters.
                prev_start, prev_end = cleaned[-1]
                cleaned[-1] = (prev_start, max(prev_end, end))
            else:
                cleaned.append((float(start), float(end)))
        self.name = name
        self._starts = [w[0] for w in cleaned]
        self._ends = [w[1] for w in cleaned]

    @classmethod
    def scripted(
        cls, *windows: Tuple[float, float], name: str = "backend"
    ) -> "OutageSchedule":
        """Explicit windows, e.g. ``scripted((100, 180), (400, 520))``."""
        return cls(windows, name=name)

    @classmethod
    def sampled(
        cls,
        seed: int,
        horizon: float,
        *,
        mtbf: float,
        downtime_mean: float,
        name: str = "backend",
    ) -> "OutageSchedule":
        """Exponential up/down alternation over ``[0, horizon)``.

        Draws come from the salted stream ``outage/<seed>/<name>`` so the
        plan never perturbs (and is never perturbed by) any other stream
        in the campaign.
        """
        if mtbf <= 0 or downtime_mean <= 0:
            raise ValueError("mtbf and downtime_mean must be > 0")
        stream = RandomStreams(seed).stream(f"outage/{seed}/{name}")
        windows: List[Tuple[float, float]] = []
        t = 0.0
        while True:
            t += stream.exponential(mtbf)
            if t >= horizon:
                break
            down = max(stream.exponential(downtime_mean), _MIN_DOWNTIME)
            windows.append((t, min(t + down, horizon)))
            t += down
        return cls(windows, name=name)

    @property
    def windows(self) -> List[Tuple[float, float]]:
        return list(zip(self._starts, self._ends))

    @property
    def total_downtime(self) -> float:
        return sum(end - start for start, end in zip(self._starts, self._ends))

    def down_at(self, now: float) -> bool:
        """Whether the dependency is down at instant *now*."""
        idx = bisect_right(self._starts, now) - 1
        return idx >= 0 and now < self._ends[idx]

    def next_transition_after(self, now: float) -> float:
        """Next instant the up/down state changes (``inf`` if never)."""
        idx = bisect_right(self._starts, now) - 1
        if idx >= 0 and now < self._ends[idx]:
            return self._ends[idx]
        nxt = bisect_right(self._starts, now)
        return self._starts[nxt] if nxt < len(self._starts) else float("inf")

    def __repr__(self) -> str:
        return f"<OutageSchedule {self.name} windows={len(self._starts)}>"
