"""Bit-accurate shared wireless channels with class-based priorities.

A :class:`Channel` models one direction of the cell's air interface:

* messages queue by (priority class, FIFO) and transmit one at a time at
  ``size_bits / bandwidth_bps`` seconds each;
* messages in the preemptive class (invalidation reports, by default)
  interrupt an ongoing lower-class transmission, which later *resumes*
  with its remaining bits — this is what lets the server start every
  report at exactly ``i * L`` as the paper's model requires;
* on completion the message is delivered to every attached receiver
  (broadcast) or matched by destination (the receivers filter).

The same class serves as the downlink (server to all clients) and the
uplink (clients share it toward the server).
"""

from __future__ import annotations

from dataclasses import replace
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Tuple

from ..des import Environment, Event, Interrupt, PriorityItem, PriorityStore
from ..des.monitor import TimeWeighted
from .faults import Fate, FaultModel
from .messages import BROADCAST, Message, PRIORITY_IR

Receiver = Callable[[Message, float], None]

_attach_order = attrgetter("key")


class _Receiver:
    """One attached delivery callback plus its dispatch metadata."""

    __slots__ = ("callback", "wired", "key", "dest", "listening")

    def __init__(self, callback: Receiver, wired: bool, key: int, dest, listening):
        self.callback = callback
        self.wired = wired
        #: Stable identity for fault judgment (Gilbert–Elliott chains are
        #: keyed by it); survives doze/wake listening churn.
        self.key = key
        #: Unicast address this receiver answers to (None = promiscuous:
        #: hears everything, like the server's uplink and the sender-side
        #: downlink bookkeeping).
        self.dest = dest
        self.listening = listening


class ChannelStats:
    """Byte-counting telemetry for one channel."""

    __slots__ = (
        "bits_enqueued",
        "bits_delivered",
        "messages_delivered",
        "bits_by_kind",
        "busy",
        "preemptions",
    )

    def __init__(self, now: float = 0.0):
        self.bits_enqueued = 0.0
        self.bits_delivered = 0.0
        self.messages_delivered = 0
        self.bits_by_kind: dict = {}
        self.busy = TimeWeighted(now, name="busy")
        self.preemptions = 0

    def utilization(self, now: float) -> float:
        """Fraction of time the channel spent transmitting."""
        return self.busy.average(now)


class Channel:
    """A shared priority-scheduled transmission medium.

    Parameters
    ----------
    env:
        The simulation environment.
    bandwidth_bps:
        Channel capacity in bits per second.
    name:
        Used in diagnostics.
    preempt_threshold:
        Messages whose priority class is <= this value interrupt an
        ongoing lower-class transmission (which resumes afterwards).
        Default: only the IR class preempts.  Set to -1 to disable
        preemption entirely.
    faults:
        Optional :class:`~repro.net.faults.FaultModel` judging each
        delivery to each non-wired receiver (drop / corrupt / deliver).
        ``None`` (the default) keeps the channel lossless.
    """

    __slots__ = (
        "env",
        "bandwidth_bps",
        "name",
        "preempt_threshold",
        "faults",
        "stats",
        "_queue",
        "_receivers",
        "_by_cb",
        "_by_dest",
        "_promiscuous",
        "_listening",
        "_next_receiver_key",
        "_seq",
        "_current",
        "_done_events",
        "_proc",
    )

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float,
        name: str = "channel",
        preempt_threshold: int = PRIORITY_IR,
        faults: Optional[FaultModel] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.name = name
        self.preempt_threshold = preempt_threshold
        self.faults = faults
        self.stats = ChannelStats(env.now)
        self._queue = PriorityStore(env)
        #: Attachment-ordered receiver records; wired ones bypass faults.
        self._receivers: List[_Receiver] = []
        self._by_cb: Dict[Receiver, _Receiver] = {}
        self._by_dest: Dict[int, List[_Receiver]] = {}
        self._promiscuous: List[_Receiver] = []
        #: Lazily rebuilt snapshot of listening receivers for broadcast
        #: dispatch (None = dirty).
        self._listening: Optional[Tuple[_Receiver, ...]] = None
        self._next_receiver_key = 0
        self._seq = 0
        self._current: Optional[PriorityItem] = None
        self._done_events: dict = {}
        self._proc = env.process(self._transmit(), name=f"{name}-tx")

    def __repr__(self):
        return (
            f"<Channel {self.name} {self.bandwidth_bps} bps "
            f"queued={len(self._queue)}>"
        )

    # -- public API ----------------------------------------------------------

    def attach(
        self, receiver: Receiver, wired: bool = False, dest=None, listening: bool = True
    ):
        """Register a delivery callback ``receiver(message, now)``.

        Every broadcast is offered to every *listening* receiver (see
        :meth:`set_listening`).  Addressed (non-broadcast) messages are
        dispatched by destination index: a receiver attached with
        ``dest=<id>`` additionally hears messages addressed to that id;
        a receiver attached without ``dest`` is promiscuous and hears
        everything (the server's uplink, channel-level taps in tests).
        A *wired* receiver is bookkeeping on the sender's side of the
        air interface (e.g. the server watching its own downlink) and is
        never subjected to fault injection.  ``listening=False`` attaches
        with the radio already powered down (a dozing client handing off
        to a new cell mid-doze).  Attaching the same callback twice to
        one channel is an error.
        """
        if receiver in self._by_cb:
            raise ValueError(f"{receiver!r} is already attached")
        rec = _Receiver(
            receiver, wired, self._next_receiver_key, dest, bool(listening)
        )
        self._next_receiver_key += 1
        self._receivers.append(rec)
        self._by_cb[receiver] = rec
        if dest is None:
            self._promiscuous.append(rec)
        else:
            self._by_dest.setdefault(dest, []).append(rec)
        self._listening = None

    def detach(self, receiver: Receiver):
        """Remove a previously attached receiver."""
        rec = self._by_cb.pop(receiver, None)
        if rec is None:
            raise ValueError(f"{receiver!r} is not attached")
        self._receivers.remove(rec)
        if rec.dest is None:
            self._promiscuous.remove(rec)
        else:
            group = self._by_dest[rec.dest]
            group.remove(rec)
            if not group:
                del self._by_dest[rec.dest]
        self._listening = None

    def set_listening(self, receiver: Receiver, listening: bool):
        """Gate delivery to *receiver* without detaching it.

        A dozing client powers its radio down: broadcasts (and their
        per-receiver fault judgments) skip it entirely instead of
        calling into a no-op handler.  Cheaper than detach/attach churn,
        and it keeps both the receiver's attachment order (which fixes
        delivery order) and its fault-chain key stable across wake-ups.
        """
        rec = self._by_cb.get(receiver)
        if rec is None:
            raise ValueError(f"{receiver!r} is not attached")
        listening = bool(listening)
        if rec.listening is not listening:
            rec.listening = listening
            self._listening = None

    def send(self, message: Message) -> Event:
        """Enqueue *message*; returns an event that fires on delivery.

        Transmission starts when the message reaches the head of its
        priority class; a message in the preemptive class interrupts an
        ongoing lower-class transmission.  Re-sending a message that is
        still in flight is an error: it would corrupt the channel's
        bookkeeping (send a fresh :class:`Message` per transmission).
        """
        if id(message) in self._done_events:
            raise ValueError(f"{message!r} is already in flight on {self.name}")
        message.enqueued_at = self.env.now
        message.remaining_bits = float(message.size_bits)
        self.stats.bits_enqueued += message.size_bits
        done = self.env.event()
        self._done_events[id(message)] = done
        self._seq += 1
        item = PriorityItem(priority=message.priority, seq=self._seq, item=message)
        self._queue.put_nowait(item)
        if (
            self._current is not None
            and message.priority <= self.preempt_threshold
            and message.priority < self._current.priority
            # A pending interrupt detaches the transmitter from its timeout;
            # a second preemption in the same instant must not re-interrupt
            # (the transmitter re-reads the queue in priority order anyway).
            and self._proc.target is not None
        ):
            self.stats.preemptions += 1
            self._proc.interrupt("preempted")
        return done

    @property
    def transmitting(self) -> Optional[Message]:
        """The message currently on the air, if any."""
        return self._current.item if self._current is not None else None

    @property
    def queued(self) -> int:
        """Number of messages waiting (not counting the one on the air)."""
        return len(self._queue)

    def transmission_time(self, size_bits: float) -> float:
        """Seconds needed to transmit *size_bits* uncontended."""
        return size_bits / self.bandwidth_bps

    # -- internals -------------------------------------------------------------

    def _transmit(self):
        env = self.env
        while True:
            item = yield self._queue.get()
            message: Message = item.item
            if message.size_bits == 0:
                # Zero-size control messages deliver instantly.
                self._deliver(message)
                continue
            self._current = item
            self.stats.busy.set(1.0, env.now)
            started = env.now
            try:
                # Fast-lane sleep (bare number): the single hottest yield
                # in the simulator — one per transmission.
                yield message.remaining_bits / self.bandwidth_bps
            except Interrupt:
                elapsed = env.now - started
                message.remaining_bits = max(
                    0.0, message.remaining_bits - elapsed * self.bandwidth_bps
                )
                self._current = None
                self.stats.busy.set(0.0, env.now)
                if message.remaining_bits <= 1e-9:
                    self._deliver(message)
                else:
                    # Re-queue with the original sequence number so the
                    # message resumes ahead of later arrivals in its class.
                    self._queue.put_nowait(item)
                continue
            message.remaining_bits = 0.0
            self._current = None
            self.stats.busy.set(0.0, env.now)
            self._deliver(message)

    @staticmethod
    def _complete(done, message: Message):
        """Fire a delivery event without a heap round-trip when unwatched.

        Most senders discard the event :meth:`send` returns; succeeding
        it through the scheduler would cost an event per message for
        nobody.  With callbacks attached the normal succeed path runs.
        """
        if done.callbacks:
            done.succeed(message)
        else:
            done._ok = True
            done._value = message
            done._mark_processed()

    def _targets(self, dests) -> List[_Receiver]:
        """Listening receivers for an addressed delivery, in attach order:
        every promiscuous receiver plus those registered for *dests*."""
        recs = [rec for rec in self._promiscuous if rec.listening]
        by_dest = self._by_dest
        for dest in dests:
            for rec in by_dest.get(dest, ()):
                if rec.listening:
                    recs.append(rec)
        recs.sort(key=_attach_order)
        return recs

    def _deliver(self, message: Message):
        now = self.env.now
        message.delivered_at = now
        self.stats.bits_delivered += message.size_bits
        self.stats.messages_delivered += 1
        kind_bits = self.stats.bits_by_kind
        kind_bits[message.kind] = kind_bits.get(message.kind, 0.0) + message.size_bits
        done = self._done_events.pop(id(message), None)
        faults = self.faults
        if faults is not None and faults.is_null:
            faults = None
        if message.dest == BROADCAST:
            recipients = message.recipients
            if recipients is None:
                # Cached snapshot: a receiver may attach()/detach()/doze
                # during delivery without skipping or double-delivering
                # to its neighbours in the list (mutators take effect at
                # the next delivery, as before).
                receivers = self._listening
                if receivers is None:
                    receivers = self._listening = tuple(
                        rec for rec in self._receivers if rec.listening
                    )
                if faults is None:
                    # Pristine broadcast: the hottest dispatch path.
                    for rec in receivers:
                        rec.callback(message, now)
                    if done is not None:
                        self._complete(done, message)
                    return
            else:
                # A coalesced data response: only its requesters (and
                # promiscuous watchers) need to decode the broadcast.
                receivers = self._targets(recipients)
        else:
            receivers = self._targets((message.dest,))
        corrupted_copy: Optional[Message] = None
        # Fault fates are judged only for receivers that are actually
        # dispatched to — dozing clients and unaddressed bystanders
        # consume no draws (see docs/PROTOCOLS.md).
        for rec in receivers:
            if faults is not None and not rec.wired:
                fate = faults.fate(message, rec.key)
                if fate is Fate.DROP:
                    continue
                if fate is Fate.CORRUPT:
                    if corrupted_copy is None:
                        corrupted_copy = replace(message, corrupted=True)
                        corrupted_copy.delivered_at = now
                    rec.callback(corrupted_copy, now)
                    continue
            rec.callback(message, now)
        if done is not None:
            self._complete(done, message)
