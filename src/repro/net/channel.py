"""Bit-accurate shared wireless channels with class-based priorities.

A :class:`Channel` models one direction of the cell's air interface:

* messages queue by (priority class, FIFO) and transmit one at a time at
  ``size_bits / bandwidth_bps`` seconds each;
* messages in the preemptive class (invalidation reports, by default)
  interrupt an ongoing lower-class transmission, which later *resumes*
  with its remaining bits — this is what lets the server start every
  report at exactly ``i * L`` as the paper's model requires;
* on completion the message is delivered to every attached receiver
  (broadcast) or matched by destination (the receivers filter).

The same class serves as the downlink (server to all clients) and the
uplink (clients share it toward the server).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional, Tuple

from ..des import Environment, Event, Interrupt, PriorityItem, PriorityStore
from ..des.monitor import TimeWeighted
from .faults import Fate, FaultModel
from .messages import Message, PRIORITY_IR

Receiver = Callable[[Message, float], None]


class ChannelStats:
    """Byte-counting telemetry for one channel."""

    def __init__(self, now: float = 0.0):
        self.bits_enqueued = 0.0
        self.bits_delivered = 0.0
        self.messages_delivered = 0
        self.bits_by_kind: dict = {}
        self.busy = TimeWeighted(now, name="busy")
        self.preemptions = 0

    def utilization(self, now: float) -> float:
        """Fraction of time the channel spent transmitting."""
        return self.busy.average(now)


class Channel:
    """A shared priority-scheduled transmission medium.

    Parameters
    ----------
    env:
        The simulation environment.
    bandwidth_bps:
        Channel capacity in bits per second.
    name:
        Used in diagnostics.
    preempt_threshold:
        Messages whose priority class is <= this value interrupt an
        ongoing lower-class transmission (which resumes afterwards).
        Default: only the IR class preempts.  Set to -1 to disable
        preemption entirely.
    faults:
        Optional :class:`~repro.net.faults.FaultModel` judging each
        delivery to each non-wired receiver (drop / corrupt / deliver).
        ``None`` (the default) keeps the channel lossless.
    """

    def __init__(
        self,
        env: Environment,
        bandwidth_bps: float,
        name: str = "channel",
        preempt_threshold: int = PRIORITY_IR,
        faults: Optional[FaultModel] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.name = name
        self.preempt_threshold = preempt_threshold
        self.faults = faults
        self.stats = ChannelStats(env.now)
        self._queue = PriorityStore(env)
        #: (receiver, wired, key) triples; wired receivers bypass faults.
        self._receivers: List[Tuple[Receiver, bool, int]] = []
        self._next_receiver_key = 0
        self._seq = 0
        self._current: Optional[PriorityItem] = None
        self._done_events: dict = {}
        self._proc = env.process(self._transmit(), name=f"{name}-tx")

    def __repr__(self):
        return (
            f"<Channel {self.name} {self.bandwidth_bps} bps "
            f"queued={len(self._queue)}>"
        )

    # -- public API ----------------------------------------------------------

    def attach(self, receiver: Receiver, wired: bool = False):
        """Register a delivery callback ``receiver(message, now)``.

        Every completed message is offered to every receiver; receivers
        filter by destination/connectivity themselves (it is a broadcast
        medium).  A *wired* receiver is bookkeeping on the sender's side
        of the air interface (e.g. the server watching its own downlink)
        and is never subjected to fault injection.
        """
        self._receivers.append((receiver, wired, self._next_receiver_key))
        self._next_receiver_key += 1

    def detach(self, receiver: Receiver):
        """Remove a previously attached receiver."""
        for i, (cb, _wired, _key) in enumerate(self._receivers):
            if cb == receiver:
                del self._receivers[i]
                return
        raise ValueError(f"{receiver!r} is not attached")

    def send(self, message: Message) -> Event:
        """Enqueue *message*; returns an event that fires on delivery.

        Transmission starts when the message reaches the head of its
        priority class; a message in the preemptive class interrupts an
        ongoing lower-class transmission.  Re-sending a message that is
        still in flight is an error: it would corrupt the channel's
        bookkeeping (send a fresh :class:`Message` per transmission).
        """
        if id(message) in self._done_events:
            raise ValueError(f"{message!r} is already in flight on {self.name}")
        message.enqueued_at = self.env.now
        message.remaining_bits = float(message.size_bits)
        self.stats.bits_enqueued += message.size_bits
        done = self.env.event()
        self._done_events[id(message)] = done
        self._seq += 1
        item = PriorityItem(priority=message.priority, seq=self._seq, item=message)
        self._queue.put(item)
        if (
            self._current is not None
            and message.priority <= self.preempt_threshold
            and message.priority < self._current.priority
            # A pending interrupt detaches the transmitter from its timeout;
            # a second preemption in the same instant must not re-interrupt
            # (the transmitter re-reads the queue in priority order anyway).
            and self._proc.target is not None
        ):
            self.stats.preemptions += 1
            self._proc.interrupt("preempted")
        return done

    @property
    def transmitting(self) -> Optional[Message]:
        """The message currently on the air, if any."""
        return self._current.item if self._current is not None else None

    @property
    def queued(self) -> int:
        """Number of messages waiting (not counting the one on the air)."""
        return len(self._queue)

    def transmission_time(self, size_bits: float) -> float:
        """Seconds needed to transmit *size_bits* uncontended."""
        return size_bits / self.bandwidth_bps

    # -- internals -------------------------------------------------------------

    def _transmit(self):
        env = self.env
        while True:
            item = yield self._queue.get()
            message: Message = item.item
            if message.size_bits == 0:
                # Zero-size control messages deliver instantly.
                self._deliver(message)
                continue
            self._current = item
            self.stats.busy.set(1.0, env.now)
            started = env.now
            try:
                yield env.timeout(message.remaining_bits / self.bandwidth_bps)
            except Interrupt:
                elapsed = env.now - started
                message.remaining_bits = max(
                    0.0, message.remaining_bits - elapsed * self.bandwidth_bps
                )
                self._current = None
                self.stats.busy.set(0.0, env.now)
                if message.remaining_bits <= 1e-9:
                    self._deliver(message)
                else:
                    # Re-queue with the original sequence number so the
                    # message resumes ahead of later arrivals in its class.
                    self._queue.put(item)
                continue
            message.remaining_bits = 0.0
            self._current = None
            self.stats.busy.set(0.0, env.now)
            self._deliver(message)

    def _deliver(self, message: Message):
        now = self.env.now
        message.delivered_at = now
        self.stats.bits_delivered += message.size_bits
        self.stats.messages_delivered += 1
        kind_bits = self.stats.bits_by_kind
        kind_bits[message.kind] = kind_bits.get(message.kind, 0.0) + message.size_bits
        done = self._done_events.pop(id(message), None)
        faults = self.faults
        if faults is not None and faults.is_null:
            faults = None
        corrupted_copy: Optional[Message] = None
        # Snapshot: a receiver may attach()/detach() during delivery
        # (e.g. a client detaching on cell hand-off) without skipping or
        # double-delivering to its neighbours in the list.
        for receiver, wired, key in tuple(self._receivers):
            if faults is not None and not wired:
                fate = faults.fate(message, key)
                if fate is Fate.DROP:
                    continue
                if fate is Fate.CORRUPT:
                    if corrupted_copy is None:
                        corrupted_copy = replace(message, corrupted=True)
                        corrupted_copy.delivered_at = now
                    receiver(corrupted_copy, now)
                    continue
            receiver(message, now)
        if done is not None:
            done.succeed(message)
