"""Point-to-point wired links between cell base stations.

The inter-cell backbone is nothing like the cell's air interface: links
are dedicated (no queueing between cells), carry small control payloads
(deltas, pull requests, salvage asks) whose serialisation time is
negligible next to the propagation latency, and fail by *losing whole
messages* rather than corrupting bits.  So an :class:`InterCellLink` is
deliberately lean — a latency, an optional seeded Bernoulli loss draw,
and counters — instead of a second :class:`~repro.net.channel.Channel`.

Delivery is callback-based and O(1) per message: one timeout event per
send, no process.  Loss is judged at send time from the link's own named
random stream, so lossy-backbone runs stay reproducible and never
perturb any other component's draws.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..des import Environment

Handler = Callable[[Any, float], None]


class InterCellLink:
    """One direction-agnostic wired link between two base stations."""

    __slots__ = ("env", "latency", "loss_prob", "stream", "sent", "lost")

    def __init__(
        self,
        env: Environment,
        latency: float,
        loss_prob: float = 0.0,
        stream=None,
    ):
        if latency <= 0:
            raise ValueError("link latency must be positive")
        if not 0.0 <= loss_prob < 1.0:
            raise ValueError("loss_prob must be in [0, 1)")
        if loss_prob > 0.0 and stream is None:
            raise ValueError("a lossy link needs a random stream")
        self.env = env
        self.latency = float(latency)
        self.loss_prob = float(loss_prob)
        self.stream = stream
        self.sent = 0
        self.lost = 0

    def __repr__(self):
        return f"<InterCellLink {self.latency}s loss={self.loss_prob}>"

    def send(self, handler: Handler, payload: Any) -> bool:
        """Deliver ``handler(payload, now)`` after the link latency.

        Returns False when the link loses the message (telemetry only —
        a real sender cannot observe the loss, so protocol logic must
        never branch on it; timeouts do the detecting).
        """
        self.sent += 1
        if self.loss_prob > 0.0 and self.stream.bernoulli(self.loss_prob):
            self.lost += 1
            return False
        event = self.env.timeout(self.latency)
        event.callbacks.append(_Delivery(handler, payload))  # type: ignore[union-attr]
        return True


class _Delivery:
    """One queued link delivery (cheaper than a closure per message)."""

    __slots__ = ("handler", "payload")

    def __init__(self, handler: Handler, payload: Any):
        self.handler = handler
        self.payload = payload

    def __call__(self, event) -> None:
        self.handler(self.payload, event.env.now)
