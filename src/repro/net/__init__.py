"""Wireless cell network substrate: messages, shared priority channels,
and deterministic fault injection."""

from .channel import Channel, ChannelStats
from .faults import Fate, FaultConfig, FaultModel, FaultStats
from .intercell import InterCellLink
from .messages import (
    BROADCAST,
    KIND_PRIORITY,
    Message,
    MessageKind,
    PRIORITY_CHECK,
    PRIORITY_DATA,
    PRIORITY_IR,
    SERVER_ID,
)

__all__ = [
    "BROADCAST",
    "Channel",
    "ChannelStats",
    "Fate",
    "FaultConfig",
    "FaultModel",
    "FaultStats",
    "InterCellLink",
    "KIND_PRIORITY",
    "Message",
    "MessageKind",
    "PRIORITY_CHECK",
    "PRIORITY_DATA",
    "PRIORITY_IR",
    "SERVER_ID",
]
