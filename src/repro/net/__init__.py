"""Wireless cell network substrate: messages and shared priority channels."""

from .channel import Channel, ChannelStats
from .messages import (
    BROADCAST,
    KIND_PRIORITY,
    Message,
    MessageKind,
    PRIORITY_CHECK,
    PRIORITY_DATA,
    PRIORITY_IR,
    SERVER_ID,
)

__all__ = [
    "BROADCAST",
    "Channel",
    "ChannelStats",
    "KIND_PRIORITY",
    "Message",
    "MessageKind",
    "PRIORITY_CHECK",
    "PRIORITY_DATA",
    "PRIORITY_IR",
    "SERVER_ID",
]
