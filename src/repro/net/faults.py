"""Deterministic wireless fault injection for :class:`~repro.net.Channel`.

The seed model treats the air interface as a perfect medium: every
transmission reaches every listener intact.  Real wireless cells lose and
corrupt frames — and the paper's AFW/AAW schemes are precisely *recovery*
machinery for clients that missed invalidation reports.  This module
supplies the adversary: a :class:`FaultModel` attached to a channel that
can

* **drop** a delivery with a per-kind probability (the frame still burns
  airtime — receivers simply never decode it);
* **corrupt** a delivery via a bit-error rate (the frame arrives flagged
  ``corrupted``; receivers must treat it as undecodable);
* produce **bursty** loss with a two-state Gilbert–Elliott chain per
  receiver (a client driving through a fade misses several consecutive
  frames, not independent coin flips).

Every decision draws from one dedicated named stream
(:class:`~repro.des.rng.RandomStream`), so runs stay reproducible and the
fault stream never perturbs the model's other streams.  A
:class:`FaultConfig` whose probabilities are all zero never draws at all
and is behaviourally identical to no fault model (the golden differential
test in ``tests/sim/test_faults.py`` pins this).

Faults are judged *per receiver* at delivery time: on a broadcast medium
each listener decodes (or fails to decode) independently, which is what
lets one client miss a report the rest of the cell heard.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from .messages import Message, MessageKind


class Fate(enum.Enum):
    """Outcome of judging one (message, receiver) delivery."""

    DELIVER = "deliver"
    DROP = "drop"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultConfig:
    """Declarative description of a channel's impairments.

    Attributes
    ----------
    drop_prob:
        Independent per-delivery loss probability while the link is in
        the *good* state.
    drop_prob_by_kind:
        Per-:class:`MessageKind` overrides of ``drop_prob`` (e.g. drop
        only invalidation reports).
    bit_error_rate:
        Per-bit corruption probability; a frame of ``n`` bits survives
        intact with probability ``(1 - ber) ** n``, so large data items
        are hit much harder than small control frames — as on real links.
    ge_good_to_bad / ge_bad_to_good:
        Per-delivery transition probabilities of the Gilbert–Elliott
        chain.  ``ge_good_to_bad = 0`` (the default) disables the chain.
    ge_bad_drop_prob:
        Loss probability while a receiver's chain is in the *bad* state
        (replaces the good-state ``drop_prob``).
    """

    drop_prob: float = 0.0
    drop_prob_by_kind: Optional[Mapping[MessageKind, float]] = None
    bit_error_rate: float = 0.0
    ge_good_to_bad: float = 0.0
    ge_bad_to_good: float = 1.0
    ge_bad_drop_prob: float = 1.0

    def __post_init__(self):
        for name in (
            "drop_prob",
            "bit_error_rate",
            "ge_good_to_bad",
            "ge_bad_to_good",
            "ge_bad_drop_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name}={value} outside [0, 1]")
        if self.drop_prob_by_kind is not None:
            for kind, prob in self.drop_prob_by_kind.items():
                if not isinstance(kind, MessageKind):
                    raise ValueError(
                        f"drop_prob_by_kind key {kind!r} is not a MessageKind"
                    )
                if not 0.0 <= prob <= 1.0:
                    raise ValueError(f"drop_prob_by_kind[{kind}]={prob} outside [0, 1]")
        if self.ge_good_to_bad > 0.0 and self.ge_bad_to_good <= 0.0:
            raise ValueError("ge_bad_to_good must be positive when bursts are enabled")

    @property
    def is_null(self) -> bool:
        """True when this config can never drop or corrupt anything."""
        if self.drop_prob > 0.0 or self.bit_error_rate > 0.0:
            return False
        if self.drop_prob_by_kind and any(
            p > 0.0 for p in self.drop_prob_by_kind.values()
        ):
            return False
        if self.ge_good_to_bad > 0.0 and self.ge_bad_drop_prob > 0.0:
            return False
        return True

    def drop_prob_for(self, kind: MessageKind) -> float:
        """Good-state loss probability for one message kind."""
        if self.drop_prob_by_kind is not None:
            return self.drop_prob_by_kind.get(kind, self.drop_prob)
        return self.drop_prob

    def corrupt_prob_for(self, size_bits: float) -> float:
        """Probability a frame of *size_bits* arrives with any bit flipped."""
        if self.bit_error_rate <= 0.0 or size_bits <= 0.0:
            return 0.0
        if self.bit_error_rate >= 1.0:
            return 1.0
        # 1 - (1 - ber)^n, computed stably for tiny ber and huge n.
        return -math.expm1(size_bits * math.log1p(-self.bit_error_rate))


@dataclass
class FaultStats:
    """Per-channel fault telemetry (per receiver-delivery events)."""

    judged: int = 0
    dropped: int = 0
    corrupted: int = 0
    dropped_bits: float = 0.0
    corrupted_bits: float = 0.0
    #: Good->bad transitions across all receiver chains (burst onsets).
    bursts: int = 0
    dropped_by_kind: Dict[MessageKind, int] = field(default_factory=dict)
    corrupted_by_kind: Dict[MessageKind, int] = field(default_factory=dict)

    @property
    def intact(self) -> int:
        """Deliveries that survived undamaged."""
        return self.judged - self.dropped - self.corrupted

    @property
    def goodput_ratio(self) -> float:
        """Fraction of judged deliveries that arrived intact."""
        return self.intact / self.judged if self.judged else 1.0


class FaultModel:
    """Judge of each (message, receiver) delivery on one channel.

    Holds the per-receiver Gilbert–Elliott chain states and the fault
    telemetry.  One instance per channel; the channel calls
    :meth:`fate` once per non-wired receiver per delivered message.
    """

    def __init__(self, config: FaultConfig, stream):
        self.config = config
        self.stream = stream
        self.stats = FaultStats()
        #: receiver key -> True while that receiver's chain is in *bad*.
        self._bad: Dict[int, bool] = {}
        self._null = config.is_null
        self._bursty = config.ge_good_to_bad > 0.0

    def __repr__(self):
        return f"<FaultModel null={self._null} stats={self.stats}>"

    @property
    def is_null(self) -> bool:
        """True when the model can never damage a delivery (no RNG use)."""
        return self._null

    def in_bad_state(self, receiver_key: int) -> bool:
        """Whether *receiver_key*'s Gilbert–Elliott chain is in *bad*."""
        return self._bad.get(receiver_key, False)

    def fate(self, message: Message, receiver_key: int) -> Fate:
        """Judge one delivery; updates chain state and telemetry."""
        if self._null:
            return Fate.DELIVER
        cfg = self.config
        stats = self.stats
        stats.judged += 1
        drop_prob = cfg.drop_prob_for(message.kind)
        if self._bursty:
            bad = self._bad.get(receiver_key, False)
            if bad:
                if self.stream.bernoulli(cfg.ge_bad_to_good):
                    bad = False
            elif self.stream.bernoulli(cfg.ge_good_to_bad):
                bad = True
                stats.bursts += 1
            self._bad[receiver_key] = bad
            if bad:
                drop_prob = cfg.ge_bad_drop_prob
        if drop_prob > 0.0 and self.stream.bernoulli(drop_prob):
            stats.dropped += 1
            stats.dropped_bits += message.size_bits
            kinds = stats.dropped_by_kind
            kinds[message.kind] = kinds.get(message.kind, 0) + 1
            return Fate.DROP
        corrupt_prob = cfg.corrupt_prob_for(message.size_bits)
        if corrupt_prob > 0.0 and self.stream.bernoulli(corrupt_prob):
            stats.corrupted += 1
            stats.corrupted_bits += message.size_bits
            kinds = stats.corrupted_by_kind
            kinds[message.kind] = kinds.get(message.kind, 0) + 1
            return Fate.CORRUPT
        return Fate.DELIVER
