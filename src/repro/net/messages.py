"""Message types carried by the wireless channels.

The paper's network discipline (Section 4): invalidation reports have the
highest priority, checking requests and validity reports come next, and
all other traffic (data requests, data items) is served first-come
first-served at the lowest priority.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

#: Destination constant for messages addressed to every listener in the cell.
BROADCAST = -1


class MessageKind(enum.Enum):
    """What a message carries; determines its priority class."""

    INVALIDATION_REPORT = "ir"
    CHECK_REQUEST = "check_request"      # client -> server cache check upload
    VALIDITY_REPORT = "validity_report"  # server -> client check response
    TLB_UPLOAD = "tlb_upload"            # client -> server last-heard timestamp
    IR_NACK = "ir_nack"                  # client -> server missed-report hint
    DATA_REQUEST = "data_request"        # client -> server item fetch
    DATA_ITEM = "data_item"              # server -> client item contents


#: Priority class per kind (lower = served first), per the paper's model.
PRIORITY_IR = 0
PRIORITY_CHECK = 1
PRIORITY_DATA = 2

KIND_PRIORITY = {
    MessageKind.INVALIDATION_REPORT: PRIORITY_IR,
    MessageKind.CHECK_REQUEST: PRIORITY_CHECK,
    MessageKind.VALIDITY_REPORT: PRIORITY_CHECK,
    MessageKind.TLB_UPLOAD: PRIORITY_CHECK,
    MessageKind.IR_NACK: PRIORITY_CHECK,
    MessageKind.DATA_REQUEST: PRIORITY_DATA,
    MessageKind.DATA_ITEM: PRIORITY_DATA,
}


@dataclass
class Message:
    """A transmission on a wireless channel.

    Parameters
    ----------
    kind:
        The :class:`MessageKind`; also selects the priority class.
    size_bits:
        Wire size.  Transmission takes ``size_bits / bandwidth`` seconds.
    src:
        Sender id (server is ``SERVER_ID``; clients are their index).
    dest:
        Receiver id or :data:`BROADCAST`.
    payload:
        Arbitrary model object (a report, an item id, ...).
    """

    kind: MessageKind
    size_bits: float
    src: int
    dest: int
    payload: Any = None
    #: Simulation time the message was enqueued (set by the channel).
    enqueued_at: Optional[float] = None
    #: Simulation time the transmission finished (set by the channel).
    delivered_at: Optional[float] = None
    #: True on the copy a receiver gets when the frame arrived damaged
    #: (fault injection); the payload is then undecodable and must be
    #: ignored.  Always False on the sender's original.
    corrupted: bool = False
    #: For a broadcast whose payload only concerns known clients (a
    #: coalesced data response): the ids whose radios must decode it.
    #: ``None`` means a true broadcast for every listener.  Read at
    #: delivery time, so a coalescing server may keep growing the set
    #: while the message is queued or on the air.
    recipients: Optional[set] = field(default=None, repr=False)
    #: Bits still to transmit; managed by the channel (preemptive resume).
    remaining_bits: float = field(default=0.0, repr=False)

    def __post_init__(self):
        if self.size_bits < 0:
            raise ValueError(f"negative message size {self.size_bits}")
        self.remaining_bits = float(self.size_bits)

    @property
    def priority(self) -> int:
        """Priority class of this message (lower served first)."""
        return KIND_PRIORITY[self.kind]

    @property
    def is_broadcast(self) -> bool:
        """True when addressed to every listener."""
        return self.dest == BROADCAST


#: Conventional id for the (single) server in a cell.
SERVER_ID = -2
