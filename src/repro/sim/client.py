"""The mobile client actor: queries, cache, disconnections, reports.

Per Section 4 of the paper each client loops: think (exponential), issue
a read-one-item query, listen to the next invalidation report, answer
from cache when the report proves the copy valid, else fetch via the
uplink.  "The arrival of a new query is separated from the completion of
the previous query by either an exponentially distributed think time or
an exponentially distributed disconnection time": with probability ``p``
the inter-query gap is a disconnection (during which every report is
missed) instead of think time.  This per-cycle reading is the one
consistent with the paper's absolute throughput levels (see DESIGN.md).

The client is also the scheme's *client context*: policies call
``send_tlb`` / ``send_check_request`` / ``note_cache_drop`` on it.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cache import CacheEntry, ClientCache
from ..des import Environment, Event
from ..des.monitor import MetricSet
from ..net import Channel, Message, MessageKind, SERVER_ID
from ..reports.sizes import checking_upload_bits, nack_upload_bits, tlb_upload_bits
from ..schemes.base import ClientOutcome
from . import metrics as m
from .energy import ENERGY_RX, ENERGY_TX


class MobileClient:
    """One mobile host in the cell."""

    def __init__(
        self,
        env: Environment,
        client_id: int,
        params,
        policy,
        query_pattern,
        downlink: Channel,
        uplink: Channel,
        metrics: MetricSet,
        streams,
        update_log=None,
        ir_channel: Channel = None,
        query_log=None,
        timeseries=None,
    ):
        self.env = env
        self.client_id = client_id
        self.params = params
        self.policy = policy
        self.query_pattern = query_pattern
        self.downlink = downlink
        self.uplink = uplink
        self.metrics = metrics
        self.update_log = update_log
        self.query_log = query_log
        self.timeseries = timeseries
        self.cache = ClientCache(params.cache_capacity)

        #: Last-heard report timestamp (the paper's ``Tlb``).  Clients
        #: start coherent: at t=0 the (empty) cache matches the database.
        self.tlb: float = 0.0
        self.connected = True
        self._query_active = False
        self._validation_pending = False
        self._validation_epoch = 0
        self._watchdog_armed = False
        #: Timestamp of the last report this client *decoded* while
        #: listening (None right after a reconnection, when a gap is
        #: expected rather than evidence of loss).  Drives missed-report
        #: detection under fault injection.
        self._last_report_heard: Optional[float] = 0.0
        #: Timestamp of the last report *applied*, for repetition-coding
        #: dedup: a second copy of the same report must be counted and
        #: discarded, never re-run through the policy (re-applying an
        #: uncovered report would wrongly escalate the adaptive schemes'
        #: ask-once salvage protocol to a full cache drop).
        self._last_report_applied: Optional[float] = None

        self._ready_waiters: Optional[Event] = None
        self._data_waits: Dict[int, Event] = {}

        self._think_stream = streams.stream(f"client-{client_id}/think")
        self._query_stream = streams.stream(f"client-{client_id}/query")
        self._disc_stream = streams.stream(f"client-{client_id}/disconnect")
        #: Jittered-backoff stream; only created when the retry layer is
        #: on, keeping the pristine configuration untouched.
        self._retry_stream = (
            streams.stream(f"client-{client_id}/retry")
            if params.retries_enabled
            else None
        )

        if params.warm_start:
            warm_stream = streams.stream(f"client-{client_id}/warm")
            for item in query_pattern.warm_fill(warm_stream, params.cache_capacity):
                # Version 0 at ts 0: coherent with the untouched database.
                self.cache.insert(CacheEntry(item=item, version=0, ts=0.0))

        downlink.attach(self._on_downlink)
        if ir_channel is not None:
            ir_channel.attach(self._on_downlink)
        env.process(self._query_loop(), name=f"client-{client_id}-query")

    def __repr__(self):
        state = "up" if self.connected else "down"
        return f"<MobileClient {self.client_id} {state} tlb={self.tlb}>"

    # -- scheme-facing context API ----------------------------------------------

    @property
    def is_idle(self) -> bool:
        """True when neither a query nor a validation is in flight."""
        return not self._query_active and not self._validation_pending

    def send_tlb(self, tlb: float):
        """Upload the last-heard timestamp (adaptive schemes)."""
        size = tlb_upload_bits(self.params.timestamp_bits)
        self.metrics.counter(m.UPLINK_VALIDATION_BITS).add(size)
        self.metrics.counter(m.TLB_UPLOADS).add()
        self._charge_tx(size)
        self.uplink.send(
            Message(
                kind=MessageKind.TLB_UPLOAD,
                size_bits=size,
                src=self.client_id,
                dest=SERVER_ID,
                payload=tlb,
            )
        )

    def send_check_request(self, entries, size_bits: Optional[float] = None):
        """Upload cached (item, timestamp) pairs for validity checking."""
        if size_bits is None:
            size_bits = checking_upload_bits(
                len(entries), self.params.db_size, self.params.timestamp_bits
            )
        self.metrics.counter(m.UPLINK_VALIDATION_BITS).add(size_bits)
        self.metrics.counter(m.CHECKS_SENT).add()
        self._charge_tx(size_bits)
        self.uplink.send(
            Message(
                kind=MessageKind.CHECK_REQUEST,
                size_bits=size_bits,
                src=self.client_id,
                dest=SERVER_ID,
                payload=list(entries),
            )
        )

    def note_cache_drop(self):
        """Metrics hook for full cache discards."""
        self.metrics.counter(m.CACHE_DROPS).add()

    def _charge_tx(self, bits: float):
        self.metrics.counter(ENERGY_TX).add(self.params.energy.tx(bits))

    def _charge_rx(self, bits: float):
        self.metrics.counter(ENERGY_RX).add(self.params.energy.rx(bits))

    # -- downlink handling -----------------------------------------------------

    def _on_downlink(self, msg: Message, now: float):
        if not self.connected:
            return
        if msg.corrupted:
            self._on_corrupted(msg)
            return
        if msg.kind is MessageKind.INVALIDATION_REPORT:
            self._charge_rx(msg.size_bits)
            if msg.payload.dedup_key == self._last_report_applied:
                # A repetition-coded copy of a report already processed:
                # count the discard (the radio still listened) and stop.
                self.metrics.counter(m.IR_DUPLICATES).add()
                return
            self._last_report_applied = msg.payload.dedup_key
            self._note_report_heard(msg.payload.timestamp, now)
            outcome = self.policy.on_report(self, msg.payload)
            if outcome is ClientOutcome.READY:
                self._validation_pending = False
                self._fire_ready()
            else:
                if not self._validation_pending:
                    self._validation_pending = True
                    self._validation_epoch += 1
                self._arm_validation_watchdog()
        elif msg.kind is MessageKind.VALIDITY_REPORT and msg.dest == self.client_id:
            if not self._validation_pending:
                # A reply to a check from a previous connection episode
                # (we dozed after uploading and woke before its delivery).
                # Applying it would certify state it never validated —
                # in particular it would clear suspect marks; drop it.
                return
            self._charge_rx(msg.size_bits)
            invalid, certified_at = msg.payload
            self.policy.on_validity_reply(self, invalid, certified_at)
            self._validation_pending = False
            self._fire_ready()
        elif msg.kind is MessageKind.DATA_ITEM:
            payload = msg.payload
            if payload.get("pushed"):
                self._on_pushed_item(msg, payload)
            elif self.client_id in payload["requesters"]:
                self._charge_rx(msg.size_bits)
                waiter = self._data_waits.pop(payload["item"], None)
                if waiter is not None:
                    waiter.succeed(payload)

    def _on_corrupted(self, msg: Message):
        """A frame arrived with bit errors: undecodable, treat as lost.

        A corrupted report is indistinguishable from a missed one — the
        gap shows up in the next decodable report's timestamp and the
        scheme's ordinary coverage/salvage logic recovers.  Corrupted
        data items and validity reports are recovered by the retry
        layer's timeouts.
        """
        if msg.kind is MessageKind.INVALIDATION_REPORT:
            # The radio listened either way; the bits were garbage.
            self._charge_rx(msg.size_bits)
            self.metrics.counter(m.IR_CORRUPTED).add()

    def _note_report_heard(self, report_ts: float, now: float):
        """Missed-report detection: reports arrive at every ``i * L``, so
        a decoded report more than one interval past the previous one —
        while this client was listening throughout — means the wireless
        hop ate reports."""
        last = self._last_report_heard
        self._last_report_heard = report_ts
        if last is None:
            return
        interval = self.params.broadcast_interval
        n_missed = int(round((report_ts - last) / interval)) - 1
        if n_missed > 0:
            self.metrics.counter(m.IR_GAPS).add(n_missed)
            la = self.params.loss_adaptation
            if la is not None and la.nack:
                self._send_ir_nack(n_missed)
            self.policy.on_missed_reports(self, n_missed, now)

    def _send_ir_nack(self, n_missed: int):
        """Upload a loss hint: *n_missed* reports provably lost on the air.

        The server's loss estimator aggregates these into the widened
        ``w_eff``; the hint rides the checking priority class and is
        priced like a ``Tlb`` upload.
        """
        size = nack_upload_bits(self.params.timestamp_bits)
        self.metrics.counter(m.UPLINK_VALIDATION_BITS).add(size)
        self.metrics.counter(m.NACK_BITS).add(size)
        self.metrics.counter(m.NACKS_SENT).add()
        self._charge_tx(size)
        self.uplink.send(
            Message(
                kind=MessageKind.IR_NACK,
                size_bits=size,
                src=self.client_id,
                dest=SERVER_ID,
                payload=n_missed,
            )
        )

    def _on_pushed_item(self, msg: Message, payload: dict):
        """Publishing mode: refresh or prefetch a broadcast item.

        A pushed item refreshes an existing cache entry, satisfies a
        pending fetch for the same item, or prefetches into the cache
        when the item lies in this client's hot query region — all
        without uplink traffic.
        """
        item = payload["item"]
        waiter = self._data_waits.pop(item, None)
        interested = (
            waiter is not None
            or item in self.cache
            or (
                self.query_pattern.hot is not None
                and self.query_pattern.hot.contains(item)
            )
        )
        if not interested:
            return
        self._charge_rx(msg.size_bits)
        coherent_ts = payload["coherent_ts"]
        self.cache.insert(
            CacheEntry(item=item, version=payload["version"], ts=coherent_ts),
            suspect=coherent_ts < self.tlb,
        )
        self.metrics.counter(m.PUBLISH_REFRESHES).add()
        if waiter is not None:
            waiter.succeed(payload)

    def _fire_ready(self):
        if self._ready_waiters is not None:
            self._ready_waiters.succeed()
            self._ready_waiters = None

    def _wait_cache_ready(self) -> Event:
        """Event firing at the next report/reply that certifies the cache."""
        if self._ready_waiters is None:
            self._ready_waiters = self.env.event()
        return self._ready_waiters

    # -- query processing ----------------------------------------------------------

    def _inter_query_gap(self):
        """Think or disconnect between queries (the paper's alternation)."""
        env = self.env
        params = self.params
        if self._disc_stream.bernoulli(params.disconnect_prob):
            self.connected = False
            self.metrics.counter(m.DISCONNECTIONS).add()
            self.policy.on_disconnect(self, env.now)
            yield env.timeout(
                self._disc_stream.exponential(params.disconnect_time_mean)
            )
            self.connected = True
            self._validation_pending = False
            # Reports missed while dozing are expected, not wireless loss.
            self._last_report_heard = None
            self.policy.on_reconnect(self, env.now)
        else:
            yield env.timeout(self._think_stream.exponential(params.think_time_mean))

    def _query_loop(self):
        env = self.env
        params = self.params
        while True:
            yield from self._inter_query_gap()
            self._query_active = True
            started = env.now
            self.metrics.counter(m.QUERIES_GENERATED).add()
            # Listen to the next invalidation report before answering
            # (Section 2), waiting out any pending validation.
            yield self._wait_cache_ready()
            hits = 0
            for _ in range(params.items_per_query):
                item = self.query_pattern.pick(self._query_stream)
                hits += yield from self._access_item(item)
                self.metrics.counter(m.ITEMS_SERVED).add()
            self.metrics.counter(m.QUERIES_ANSWERED).add()
            if self.timeseries is not None:
                self.timeseries["answered"].record(env.now)
            latency = env.now - started
            self.metrics.tally(m.QUERY_LATENCY).observe(latency)
            self.metrics.histogram(m.QUERY_LATENCY, base=0.1).observe(latency)
            if self.query_log is not None:
                from .querylog import QueryRecord

                self.query_log.record(
                    QueryRecord(
                        client_id=self.client_id,
                        started=started,
                        answered=env.now,
                        items=params.items_per_query,
                        hits=hits,
                        misses=params.items_per_query - hits,
                    )
                )
            self._query_active = False

    def _access_item(self, item: int):
        """Serve one item access; returns 1 for a cache hit, 0 for a miss."""
        entry = self.cache.lookup(item)
        if entry is not None:
            self.metrics.counter(m.CACHE_HITS).add()
            if self.timeseries is not None:
                self.timeseries["hits"].record(self.env.now)
            if (
                self.params.track_staleness
                and self.update_log is not None
                and self.update_log.updated_in(item, after=entry.ts, up_to=self.tlb)
            ):
                self.metrics.counter(m.STALE_HITS).add()
            return 1
        self.metrics.counter(m.CACHE_MISSES).add()
        if self.timeseries is not None:
            self.timeseries["misses"].record(self.env.now)
        payload = yield from self._fetch(item)
        if payload is None:
            # Every retry lost on the air: the item goes unserved this
            # query (counted in client.fetch_failures) — but the query
            # itself terminates instead of hanging forever.
            return 0
        coherent_ts = payload["coherent_ts"]
        # A fetch whose response crossed a report boundary carries a value
        # older than the client's knowledge horizon; mark it suspect so
        # the scheme reconciles it at the next report.
        self.cache.insert(
            CacheEntry(item=item, version=payload["version"], ts=coherent_ts),
            suspect=coherent_ts < self.tlb,
        )
        return 0

    def _send_data_request(self, item: int):
        size = self.params.control_message_bits
        self.metrics.counter(m.UPLINK_REQUEST_BITS).add(size)
        self._charge_tx(size)
        self.uplink.send(
            Message(
                kind=MessageKind.DATA_REQUEST,
                size_bits=size,
                src=self.client_id,
                dest=SERVER_ID,
                payload=item,
            )
        )

    def _backoff_delay(self, attempt: int) -> float:
        """Timeout for *attempt* (0-based): exponential with +-jitter."""
        params = self.params
        delay = params.uplink_timeout * (params.backoff_base ** attempt)
        if params.backoff_jitter > 0.0:
            delay *= 1.0 + params.backoff_jitter * self._retry_stream.uniform(
                -1.0, 1.0
            )
        return delay

    def _fetch(self, item: int):
        """Request *item* over the uplink; wait for the broadcast response.

        With the retry layer on (``params.uplink_timeout``), a response
        that does not arrive in time triggers a retransmission with
        exponential backoff and jitter; after ``max_retries``
        retransmissions the fetch gives up and returns None.  A late
        response still satisfies the original waiter (the request is
        idempotent — the server rereads the current value).
        """
        waiter = self._data_waits.get(item)
        if waiter is None:
            waiter = self.env.event()
            self._data_waits[item] = waiter
            self._send_data_request(item)
        if self._retry_stream is None:
            payload = yield waiter
            return payload
        attempt = 0
        while True:
            timeout = self.env.timeout(self._backoff_delay(attempt))
            yield self.env.any_of([waiter, timeout])
            if waiter.triggered:
                return waiter.value
            attempt += 1
            self.metrics.counter(m.FETCH_TIMEOUTS).add()
            if attempt > self.params.max_retries:
                self.metrics.counter(m.FETCH_FAILURES).add()
                if self._data_waits.get(item) is waiter:
                    del self._data_waits[item]
                return None
            self.metrics.counter(m.RETRIES).add()
            self._send_data_request(item)

    # -- validation recovery ---------------------------------------------------

    def _arm_validation_watchdog(self):
        """Bound the wait for a validity/rescue reply (retry layer only)."""
        if self._retry_stream is None or self._watchdog_armed:
            return
        self._watchdog_armed = True
        self.env.process(
            self._validation_watchdog(),
            name=f"client-{self.client_id}-watchdog",
        )

    def _validation_watchdog(self):
        """Timeout + bounded retries around a pending validation.

        Each timeout asks the policy to re-issue its upload
        (``on_validation_timeout``); once retries are exhausted — or the
        policy cannot retry — the client degrades gracefully: drop the
        cache (an empty cache is trivially consistent), release the
        stalled query, and let the next report resynchronise ``tlb``.
        """
        env = self.env
        try:
            while self._validation_pending and self.connected:
                # One inner pass per validation episode; a fresh episode
                # beginning while we sleep restarts the timing.
                epoch = self._validation_epoch
                attempt = 0
                while True:
                    yield env.timeout(self._backoff_delay(min(attempt, 8)))
                    if (
                        not self._validation_pending
                        or self._validation_epoch != epoch
                        or not self.connected
                    ):
                        break
                    attempt += 1
                    self.metrics.counter(m.VALIDATION_TIMEOUTS).add()
                    if (
                        attempt <= self.params.max_retries
                        and self.policy.on_validation_timeout(self, env.now)
                    ):
                        self.metrics.counter(m.RETRIES).add()
                        continue
                    self.cache.drop_all()
                    self.note_cache_drop()
                    # Tell the policy its in-flight exchange is dead (the
                    # reconnect hook is exactly this reset).
                    self.policy.on_reconnect(self, env.now)
                    self._validation_pending = False
                    self._fire_ready()
                    return
        finally:
            self._watchdog_armed = False
