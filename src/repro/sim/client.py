"""The mobile client actor: queries, cache, disconnections, reports.

Per Section 4 of the paper each client loops: think (exponential), issue
a read-one-item query, listen to the next invalidation report, answer
from cache when the report proves the copy valid, else fetch via the
uplink.  "The arrival of a new query is separated from the completion of
the previous query by either an exponentially distributed think time or
an exponentially distributed disconnection time": with probability ``p``
the inter-query gap is a disconnection (during which every report is
missed) instead of think time.  This per-cycle reading is the one
consistent with the paper's absolute throughput levels (see DESIGN.md).

The client is also the scheme's *client context*: policies call
``send_tlb`` / ``send_check_request`` / ``note_cache_drop`` on it.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cache import CacheEntry, ClientCache
from ..des import Environment, Event
from ..des.monitor import MetricSet
from ..net import Channel, Message, MessageKind, SERVER_ID
from ..reports.sizes import checking_upload_bits, nack_upload_bits, tlb_upload_bits
from ..schemes.base import ClientOutcome
from . import metrics as m
from .energy import ENERGY_RX, ENERGY_TX

# Hot-branch kind constants: skip the enum attribute lookups in the
# per-delivery dispatch below.
_IR = MessageKind.INVALIDATION_REPORT
_VALIDITY = MessageKind.VALIDITY_REPORT
_DATA = MessageKind.DATA_ITEM
_READY = ClientOutcome.READY


class MobileClient:
    """One mobile host in the cell."""

    def __init__(
        self,
        env: Environment,
        client_id: int,
        params,
        policy,
        query_pattern,
        downlink: Channel,
        uplink: Channel,
        metrics: MetricSet,
        streams,
        update_log=None,
        ir_channel: Channel = None,
        query_log=None,
        timeseries=None,
        cell_id: int = 0,
        pool=None,
        resume=None,
    ):
        self.env = env
        self.client_id = client_id
        #: Which cell's base station this client is associated with.
        self.cell_id = cell_id
        self.params = params
        self.policy = policy
        self.query_pattern = query_pattern
        self.downlink = downlink
        self.uplink = uplink
        self.metrics = metrics
        self.update_log = update_log
        self.query_log = query_log
        self.timeseries = timeseries
        self.cache = ClientCache(params.cache_capacity)

        #: Last-heard report timestamp (the paper's ``Tlb``).  Clients
        #: start coherent: at t=0 the (empty) cache matches the database.
        self.tlb: float = 0.0
        self.connected = True
        self._query_active = False
        self._validation_pending = False
        self._validation_epoch = 0
        self._watchdog_armed = False
        #: Timestamp of the last report this client *decoded* while
        #: listening (None right after a reconnection, when a gap is
        #: expected rather than evidence of loss).  Drives missed-report
        #: detection under fault injection.
        self._last_report_heard: Optional[float] = 0.0
        #: Timestamp of the last report *applied*, for repetition-coding
        #: dedup: a second copy of the same report must be counted and
        #: discarded, never re-run through the policy (re-applying an
        #: uncovered report would wrongly escalate the adaptive schemes'
        #: ask-once salvage protocol to a full cache drop).
        self._last_report_applied: Optional[float] = None
        #: Server incarnation epoch of the last report applied.  A report
        #: carrying a different epoch (or a timeline regression) means
        #: the server restarted and the history behind our ``Tlb`` is
        #: gone — the epoch state machine in :meth:`_on_downlink` purges.
        self._report_epoch = 0
        #: Cell whose epoch timeline ``_report_epoch`` belongs to.  None
        #: right after a handoff: the first report heard in the new cell
        #: adopts its ``(cell, epoch)`` pair without purging — protocol
        #: timestamps are global, so certifications travel with the
        #: client (see docs/PROTOCOLS.md).
        self._report_cell: Optional[int] = cell_id
        #: Roaming hook installed by the multi-cell model (None at N=1 —
        #: an attribute test per wake-up, nothing more).  Called with
        #: ``(client, now)`` when the client wakes from a disconnection.
        self._roam = None
        #: Clock error injected by the chaos layer (see ClockModel):
        #: defaults are a perfect clock and are exactly free — ``d * 1.0``
        #: is bit-identical in IEEE arithmetic.
        self._clock_rate = 1.0
        self._clock_skew = 0.0

        self._ready_waiters: Optional[Event] = None
        self._data_waits: Dict[int, Event] = {}

        # Hot-path metric handles, resolved once (docs/PERFORMANCE.md):
        # every query/IR/fetch used to pay a string-keyed dict lookup.
        bind = metrics.bind_counter
        self._m_queries_generated = bind(m.QUERIES_GENERATED)
        self._m_queries_answered = bind(m.QUERIES_ANSWERED)
        self._m_items_served = bind(m.ITEMS_SERVED)
        self._m_cache_hits = bind(m.CACHE_HITS)
        self._m_cache_misses = bind(m.CACHE_MISSES)
        self._m_stale_hits = bind(m.STALE_HITS)
        self._m_cache_drops = bind(m.CACHE_DROPS)
        self._m_disconnections = bind(m.DISCONNECTIONS)
        self._m_uplink_validation_bits = bind(m.UPLINK_VALIDATION_BITS)
        self._m_uplink_request_bits = bind(m.UPLINK_REQUEST_BITS)
        self._m_tlb_uploads = bind(m.TLB_UPLOADS)
        self._m_checks_sent = bind(m.CHECKS_SENT)
        self._m_ir_duplicates = bind(m.IR_DUPLICATES)
        self._m_ir_gaps = bind(m.IR_GAPS)
        self._m_energy_tx = bind(ENERGY_TX)
        self._m_energy_rx = bind(ENERGY_RX)
        self._m_latency_tally = metrics.bind_tally(m.QUERY_LATENCY)
        self._m_latency_hist = metrics.bind_histogram(m.QUERY_LATENCY, base=0.1)
        # Per-bit energy costs hoisted out of the per-message charge path.
        self._tx_nj_per_bit = params.energy.tx_nj_per_bit
        self._rx_nj_per_bit = params.energy.rx_nj_per_bit

        self._think_stream = streams.stream(f"client-{client_id}/think")
        self._query_stream = streams.stream(f"client-{client_id}/query")
        self._disc_stream = streams.stream(f"client-{client_id}/disconnect")
        #: Jittered-backoff stream; only created when the retry layer is
        #: on, keeping the pristine configuration untouched.
        self._retry_stream = (
            streams.stream(f"client-{client_id}/retry")
            if params.retries_enabled
            else None
        )

        if resume is None and params.warm_start:
            warm_stream = streams.stream(f"client-{client_id}/warm")
            for item in query_pattern.warm_fill(warm_stream, params.cache_capacity):
                # Version 0 at ts 0: coherent with the untouched database.
                self.cache.insert(CacheEntry(item=item, version=0, ts=0.0))

        #: Population pool this client may be absorbed into on a long
        #: doze (None with aggregation off — one attribute test per doze).
        self._pool = pool
        self._resumed = resume is not None
        if resume is not None:
            # Promoted from the population pool: start mid-doze with the
            # reconstructed stratum cache; :meth:`wake_from_pool` then
            # runs the ordinary reconnect transition.
            self.cache = resume.cache
            self.tlb = resume.tlb
            self._report_epoch = resume.report_epoch
            self._report_cell = resume.report_cell
            self._clock_rate = resume.clock_rate
            self._clock_skew = resume.clock_skew
            self.connected = False
            self._last_report_heard = None

        self._ir_channel = ir_channel
        downlink.attach(self._on_downlink, dest=client_id, listening=resume is None)
        if ir_channel is not None:
            ir_channel.attach(
                self._on_downlink, dest=client_id, listening=resume is None
            )
        env.process(self._query_loop(), name=f"client-{client_id}-query")

    def __repr__(self):
        state = "up" if self.connected else "down"
        return f"<MobileClient {self.client_id} {state} tlb={self.tlb}>"

    # -- scheme-facing context API ----------------------------------------------

    @property
    def is_idle(self) -> bool:
        """True when neither a query nor a validation is in flight."""
        return not self._query_active and not self._validation_pending

    def send_tlb(self, tlb: float):
        """Upload the last-heard timestamp (adaptive schemes)."""
        size = tlb_upload_bits(self.params.timestamp_bits)
        self._m_uplink_validation_bits.add(size)
        self._m_tlb_uploads.add()
        self._charge_tx(size)
        self.uplink.send(
            Message(
                kind=MessageKind.TLB_UPLOAD,
                size_bits=size,
                src=self.client_id,
                dest=SERVER_ID,
                payload=tlb,
            )
        )

    def send_check_request(self, entries, size_bits: Optional[float] = None):
        """Upload cached (item, timestamp) pairs for validity checking."""
        if size_bits is None:
            size_bits = checking_upload_bits(
                len(entries), self.params.db_size, self.params.timestamp_bits
            )
        self._m_uplink_validation_bits.add(size_bits)
        self._m_checks_sent.add()
        self._charge_tx(size_bits)
        self.uplink.send(
            Message(
                kind=MessageKind.CHECK_REQUEST,
                size_bits=size_bits,
                src=self.client_id,
                dest=SERVER_ID,
                payload=list(entries),
            )
        )

    def note_cache_drop(self):
        """Metrics hook for full cache discards."""
        self._m_cache_drops.add()

    # -- chaos-facing API (repro.chaos.ChaosInjector) ---------------------------

    def set_clock(self, clock):
        """Install this client's :class:`~repro.chaos.ClockModel` (None =
        perfect clock, the default)."""
        if clock is None:
            return
        self._clock_skew = clock.start_offset
        self._clock_rate = clock.rate

    def crash(self, now: float):
        """Instant reboot with all volatile state lost.

        The cache, ``Tlb``, report bookkeeping and any in-flight
        validation die; a fresh :class:`ClientCache` also resets the
        certification floor (``drop_all`` deliberately does not).  The
        query loop itself survives — a rebooted host resumes its user —
        and in-flight data waiters are kept so an already-transmitted
        response still terminates its query (the value is inserted
        non-suspect against ``tlb = 0`` and is coherent at serve time).
        """
        self.cache = ClientCache(self.params.cache_capacity)
        self.tlb = 0.0
        self._last_report_heard = None
        self._last_report_applied = None
        self._validation_pending = False
        # The policy's per-episode latches must not outlive the reboot
        # (a pre-crash checking upload's reply must not be awaited).
        self.policy.on_reconnect(self, now)
        self._fire_ready()

    # -- roaming (driven by repro.sim.multicell.MultiCellModel) -----------------

    def hand_off(self, cell_id: int, downlink: Channel, uplink: Channel,
                 ir_channel: Optional[Channel] = None):
        """Re-associate with *cell_id*'s base station.

        The radio re-attaches to the new cell's channels (keeping its
        doze/wake state); cache, ``Tlb`` and all certifications travel
        untouched — timestamps are global, so the new cell's reports
        judge them honestly.  Report bookkeeping resets to the
        "just (re)connected" state: the first report heard here adopts
        the new cell's (cell, epoch) identity, and a gap is expected
        rather than evidence of wireless loss.  Any exchange in flight
        toward the old cell is stranded; the retry layer re-issues it on
        the new uplink (roaming therefore requires ``uplink_timeout``).
        """
        self.downlink.detach(self._on_downlink)
        if self._ir_channel is not None:
            self._ir_channel.detach(self._on_downlink)
        self.downlink = downlink
        self.uplink = uplink
        self._ir_channel = ir_channel
        downlink.attach(
            self._on_downlink, dest=self.client_id, listening=self.connected
        )
        if ir_channel is not None:
            ir_channel.attach(
                self._on_downlink, dest=self.client_id, listening=self.connected
            )
        self.cell_id = cell_id
        self._report_cell = None
        self._last_report_applied = None
        self._last_report_heard = None

    # -- population pool (driven by repro.sim.population) -----------------------

    def wake_from_pool(self, now: float):
        """Complete a promotion: the exact model's doze-wake sequence.

        Mirrors the reconnect tail of :meth:`_inter_query_gap` — roam
        check first (while still down, as on an ordinary wake), then
        radio up and the policy's promotion hook (which defaults to the
        reconnect reset).  The query loop itself was started by
        ``__init__`` and resumes at the post-doze instruction.
        """
        if self._roam is not None:
            self._roam(self, now)
        self.connected = True
        self._set_listening(True)
        self._validation_pending = False
        # Reports missed while pooled are expected, not wireless loss.
        self._last_report_heard = None
        self.policy.on_promote(self, now)

    def _charge_tx(self, bits: float):
        self._m_energy_tx.add(self._tx_nj_per_bit * bits)

    def _charge_rx(self, bits: float):
        self._m_energy_rx.add(self._rx_nj_per_bit * bits)

    # -- downlink handling -----------------------------------------------------

    def _set_listening(self, on: bool):
        """Doze/wake the radio: gate broadcast dispatch at the channel.

        While dozing, the channel skips this client entirely (no handler
        call, no fault judgment) — the ``connected`` check in
        :meth:`_on_downlink` stays as defence in depth.
        """
        self.downlink.set_listening(self._on_downlink, on)
        if self._ir_channel is not None:
            self._ir_channel.set_listening(self._on_downlink, on)

    def _on_downlink(self, msg: Message, now: float):
        if not self.connected:
            return
        if msg.corrupted:
            self._on_corrupted(msg)
            return
        if msg.kind is _IR:
            # Hottest branch in the cell (every listener, every tick):
            # charge inline and read the dedup property once.
            self._m_energy_rx.add(self._rx_nj_per_bit * msg.size_bits)
            report = msg.payload
            # Every report's dedup_key IS its timestamp (reports.base);
            # the direct read skips a property call per listener.
            report_ts = report.timestamp
            prev_applied = self._last_report_applied
            if report_ts == prev_applied:
                # A repetition-coded copy of a report already processed:
                # count the discard (the radio still listened) and stop.
                self._m_ir_duplicates.add()
                return
            epoch = report.epoch
            if self._report_cell is None:
                # First report after a handoff: adopt the new cell's
                # (cell, epoch) identity without purging.  Protocol
                # timestamps are global, so everything certified under
                # the old cell stays certified — the coverage checks
                # below judge it against this cell's history honestly.
                self._report_cell = report.cell
                self._report_epoch = epoch
            elif epoch != self._report_epoch or report.cell != self._report_cell or (
                prev_applied is not None and report_ts < prev_applied
            ):
                # The server restarted under us (a timeline regression is
                # the same symptom, detected belt-and-braces): everything
                # we certified against the old incarnation's history is
                # void.  Purge via the scheme (default: full drop), then
                # resynchronise Tlb to the new timeline so this very
                # report certifies the emptied cache.
                self.metrics.counter(m.EPOCH_PURGES).add()
                self.policy.on_epoch_change(self, self._report_epoch, epoch, now)
                self._report_cell = report.cell
                self._report_epoch = epoch
                self._validation_pending = False
                self._last_report_heard = None
                self.tlb = report_ts
            if report_ts < self.tlb:
                # A lagging cell: the roamer's Tlb already certifies past
                # this report's horizon, so applying it would regress
                # knowledge (and wrongly purge).  Skip it; queries may
                # proceed unless an unreconciled fetch needs a report.
                self.metrics.counter(m.ROAM_LAGGED_REPORTS).add()
                if not self.cache.unreconciled:
                    self._fire_ready()
                return
            self._last_report_applied = report_ts
            # Missed-report detection, inlined: a decoded report one
            # interval after the previous one (the overwhelmingly common
            # case) needs no gap analysis.
            last = self._last_report_heard
            self._last_report_heard = report_ts
            if last is not None and round(
                (report_ts - last) / self.params.broadcast_interval
            ) > 1:
                self._on_report_gap(report_ts, last, now)
            outcome = self.policy.on_report(self, report)
            if outcome is _READY:
                self._validation_pending = False
                waiter = self._ready_waiters
                if waiter is not None:
                    self._ready_waiters = None
                    waiter.succeed()
            else:
                if not self._validation_pending:
                    self._validation_pending = True
                    self._validation_epoch += 1
                self._arm_validation_watchdog()
        elif msg.kind is _VALIDITY and msg.dest == self.client_id:
            if not self._validation_pending:
                # A reply to a check from a previous connection episode
                # (we dozed after uploading and woke before its delivery).
                # Applying it would certify state it never validated —
                # in particular it would clear suspect marks; drop it.
                return
            self._charge_rx(msg.size_bits)
            invalid, certified_at = msg.payload
            self.policy.on_validity_reply(self, invalid, certified_at)
            self._validation_pending = False
            self._fire_ready()
        elif msg.kind is _DATA:
            payload = msg.payload
            if payload.get("pushed"):
                self._on_pushed_item(msg, payload)
            elif self.client_id in payload["requesters"]:
                self._charge_rx(msg.size_bits)
                waiter = self._data_waits.pop(payload["item"], None)
                if waiter is not None:
                    waiter.succeed(payload)

    def _on_corrupted(self, msg: Message):
        """A frame arrived with bit errors: undecodable, treat as lost.

        A corrupted report is indistinguishable from a missed one — the
        gap shows up in the next decodable report's timestamp and the
        scheme's ordinary coverage/salvage logic recovers.  Corrupted
        data items and validity reports are recovered by the retry
        layer's timeouts.
        """
        if msg.kind is MessageKind.INVALIDATION_REPORT:
            # The radio listened either way; the bits were garbage.
            self._charge_rx(msg.size_bits)
            self.metrics.counter(m.IR_CORRUPTED).add()

    def _on_report_gap(self, report_ts: float, last: float, now: float):
        """Missed-report handling: reports arrive at every ``i * L``, so
        a decoded report more than one interval past the previous one —
        while this client was listening throughout — means the wireless
        hop ate reports.  (The no-gap common case is screened inline in
        :meth:`_on_downlink`.)"""
        interval = self.params.broadcast_interval
        n_missed = int(round((report_ts - last) / interval)) - 1
        self._m_ir_gaps.add(n_missed)
        la = self.params.loss_adaptation
        if la is not None and la.nack:
            self._send_ir_nack(n_missed)
        self.policy.on_missed_reports(self, n_missed, now)

    def _send_ir_nack(self, n_missed: int):
        """Upload a loss hint: *n_missed* reports provably lost on the air.

        The server's loss estimator aggregates these into the widened
        ``w_eff``; the hint rides the checking priority class and is
        priced like a ``Tlb`` upload.
        """
        size = nack_upload_bits(self.params.timestamp_bits)
        self._m_uplink_validation_bits.add(size)
        self.metrics.counter(m.NACK_BITS).add(size)
        self.metrics.counter(m.NACKS_SENT).add()
        self._charge_tx(size)
        self.uplink.send(
            Message(
                kind=MessageKind.IR_NACK,
                size_bits=size,
                src=self.client_id,
                dest=SERVER_ID,
                payload=n_missed,
            )
        )

    def _on_pushed_item(self, msg: Message, payload: dict):
        """Publishing mode: refresh or prefetch a broadcast item.

        A pushed item refreshes an existing cache entry, satisfies a
        pending fetch for the same item, or prefetches into the cache
        when the item lies in this client's hot query region — all
        without uplink traffic.
        """
        item = payload["item"]
        waiter = self._data_waits.pop(item, None)
        interested = (
            waiter is not None
            or item in self.cache
            or (
                self.query_pattern.hot is not None
                and self.query_pattern.hot.contains(item)
            )
        )
        if not interested:
            return
        self._charge_rx(msg.size_bits)
        coherent_ts = payload["coherent_ts"]
        self.cache.insert(
            CacheEntry(item=item, version=payload["version"], ts=coherent_ts),
            suspect=coherent_ts < self.tlb,
        )
        self.metrics.counter(m.PUBLISH_REFRESHES).add()
        if waiter is not None:
            waiter.succeed(payload)

    def _fire_ready(self):
        if self._ready_waiters is not None:
            self._ready_waiters.succeed()
            self._ready_waiters = None

    def _wait_cache_ready(self) -> Event:
        """Event firing at the next report/reply that certifies the cache."""
        if self._ready_waiters is None:
            self._ready_waiters = self.env.event()
        return self._ready_waiters

    # -- query processing ----------------------------------------------------------

    def _inter_query_gap(self):
        """Think or disconnect between queries (the paper's alternation)."""
        env = self.env
        params = self.params
        if self._disc_stream.bernoulli(params.disconnect_prob):
            self.connected = False
            self._set_listening(False)
            self._m_disconnections.add()
            self.policy.on_disconnect(self, env.now)
            doze = (
                self._disc_stream.exponential(params.disconnect_time_mean)
                * self._clock_rate
            )
            pool = self._pool
            if pool is not None and pool.try_absorb(self, doze):
                # Absorbed into the population pool: shed the radio and
                # end this actor.  The pool's seeded wake promotes a
                # reconstructed replacement at exactly ``now + doze`` —
                # the instant this sleep would have returned.
                self.downlink.detach(self._on_downlink)
                if self._ir_channel is not None:
                    self._ir_channel.detach(self._on_downlink)
                return True
            yield env.sleep(doze)
            if self._roam is not None:
                # Multi-cell: a waking client may find itself under a
                # different base station (it moved while dozing).
                self._roam(self, env.now)
            self.connected = True
            self._set_listening(True)
            self._validation_pending = False
            # Reports missed while dozing are expected, not wireless loss.
            self._last_report_heard = None
            self.policy.on_reconnect(self, env.now)
        else:
            # Locally timed waits run on the (possibly drifting) local
            # clock; rate 1.0 multiplies out bit-identically.
            yield env.sleep(
                self._think_stream.exponential(params.think_time_mean)
                * self._clock_rate
            )

    def _query_loop(self):
        env = self.env
        params = self.params
        if self._clock_skew > 0.0 and not self._resumed:
            # Clock skew shows up as a phase offset of the client's local
            # activity (protocol timestamps all originate at the server).
            # Chaos-only: a perfect clock schedules no event here.
            yield env.sleep(self._clock_skew)
        first = self._resumed
        while True:
            if first:
                # Promoted mid-cycle: the doze that absorbed this client
                # IS the inter-query gap, so go straight to the query —
                # the instruction the exact model resumes at after its
                # doze sleep returns.
                first = False
            elif (yield from self._inter_query_gap()):
                # Absorbed into the population pool: this actor is done.
                return
            self._query_active = True
            started = env.now
            self._m_queries_generated.add()
            # Listen to the next invalidation report before answering
            # (Section 2), waiting out any pending validation.
            yield self._wait_cache_ready()
            hits = 0
            for _ in range(params.items_per_query):
                item = self.query_pattern.pick(self._query_stream)
                hits += yield from self._access_item(item)
                self._m_items_served.add()
            self._m_queries_answered.add()
            if self.timeseries is not None:
                self.timeseries["answered"].record(env.now)
            latency = env.now - started
            self._m_latency_tally.observe(latency)
            self._m_latency_hist.observe(latency)
            if self.query_log is not None:
                from .querylog import QueryRecord

                self.query_log.record(
                    QueryRecord(
                        client_id=self.client_id,
                        started=started,
                        answered=env.now,
                        items=params.items_per_query,
                        hits=hits,
                        misses=params.items_per_query - hits,
                    )
                )
            self._query_active = False

    def _access_item(self, item: int):
        """Serve one item access; returns 1 for a cache hit, 0 for a miss."""
        entry = self.cache.lookup(item)
        if entry is not None:
            self._m_cache_hits.add()
            if self.timeseries is not None:
                self.timeseries["hits"].record(self.env.now)
            if (
                self.params.track_staleness
                and self.update_log is not None
                and self.update_log.updated_in(item, after=entry.ts, up_to=self.tlb)
            ):
                self._m_stale_hits.add()
                if self.params.strict_staleness:
                    # The hard safety oracle: die loudly at the first
                    # unsafe answer, with the full conviction trace.
                    # Lazy import keeps the layering DAG intact (ARCH001:
                    # chaos sits above sim); this path is cold by design.
                    from ..chaos.oracle import StalenessViolation

                    raise StalenessViolation(
                        client_id=self.client_id,
                        item=item,
                        entry_version=entry.version,
                        entry_ts=entry.ts,
                        effective_ts=self.cache.effective_ts(entry),
                        tlb=self.tlb,
                        certified_floor=self.cache.certified_floor,
                        epoch=self._report_epoch,
                        now=self.env.now,
                        update_times=self.update_log.updates_of(item),
                    )
            return 1
        self._m_cache_misses.add()
        if self.timeseries is not None:
            self.timeseries["misses"].record(self.env.now)
        payload = yield from self._fetch(item)
        if payload is None:
            # Every retry lost on the air: the item goes unserved this
            # query (counted in client.fetch_failures) — but the query
            # itself terminates instead of hanging forever.
            return 0
        coherent_ts = payload["coherent_ts"]
        # A fetch whose response crossed a report boundary carries a value
        # older than the client's knowledge horizon; mark it suspect so
        # the scheme reconciles it at the next report.
        self.cache.insert(
            CacheEntry(item=item, version=payload["version"], ts=coherent_ts),
            suspect=coherent_ts < self.tlb,
        )
        return 0

    def _send_data_request(self, item: int):
        size = self.params.control_message_bits
        self._m_uplink_request_bits.add(size)
        self._charge_tx(size)
        self.uplink.send(
            Message(
                kind=MessageKind.DATA_REQUEST,
                size_bits=size,
                src=self.client_id,
                dest=SERVER_ID,
                payload=item,
            )
        )

    def _backoff_delay(self, attempt: int) -> float:
        """Timeout for *attempt* (0-based): exponential with +-jitter."""
        params = self.params
        delay = params.uplink_timeout * (params.backoff_base ** attempt)
        if params.backoff_jitter > 0.0:
            delay *= 1.0 + params.backoff_jitter * self._retry_stream.uniform(
                -1.0, 1.0
            )
        # Retry timers run on the local (possibly drifting) clock.
        return delay * self._clock_rate

    def _fetch(self, item: int):
        """Request *item* over the uplink; wait for the broadcast response.

        With the retry layer on (``params.uplink_timeout``), a response
        that does not arrive in time triggers a retransmission with
        exponential backoff and jitter; after ``max_retries``
        retransmissions the fetch gives up and returns None.  A late
        response still satisfies the original waiter (the request is
        idempotent — the server rereads the current value).
        """
        waiter = self._data_waits.get(item)
        if waiter is None:
            waiter = self.env.event()
            self._data_waits[item] = waiter
            self._send_data_request(item)
        if self._retry_stream is None:
            payload = yield waiter
            return payload
        attempt = 0
        while True:
            timeout = self.env.timeout(self._backoff_delay(attempt))
            yield self.env.any_of([waiter, timeout])
            if waiter.triggered:
                return waiter.value
            attempt += 1
            self.metrics.counter(m.FETCH_TIMEOUTS).add()
            if attempt > self.params.max_retries:
                self.metrics.counter(m.FETCH_FAILURES).add()
                if self._data_waits.get(item) is waiter:
                    del self._data_waits[item]
                return None
            self.metrics.counter(m.RETRIES).add()
            self._send_data_request(item)

    # -- validation recovery ---------------------------------------------------

    def _arm_validation_watchdog(self):
        """Bound the wait for a validity/rescue reply (retry layer only)."""
        if self._retry_stream is None or self._watchdog_armed:
            return
        self._watchdog_armed = True
        self.env.process(
            self._validation_watchdog(),
            name=f"client-{self.client_id}-watchdog",
        )

    def _validation_watchdog(self):
        """Timeout + bounded retries around a pending validation.

        Each timeout asks the policy to re-issue its upload
        (``on_validation_timeout``); once retries are exhausted — or the
        policy cannot retry — the client degrades gracefully: drop the
        cache (an empty cache is trivially consistent), release the
        stalled query, and let the next report resynchronise ``tlb``.
        """
        env = self.env
        try:
            while self._validation_pending and self.connected:
                # One inner pass per validation episode; a fresh episode
                # beginning while we sleep restarts the timing.
                epoch = self._validation_epoch
                attempt = 0
                while True:
                    yield env.sleep(self._backoff_delay(min(attempt, 8)))
                    if (
                        not self._validation_pending
                        or self._validation_epoch != epoch
                        or not self.connected
                    ):
                        break
                    attempt += 1
                    self.metrics.counter(m.VALIDATION_TIMEOUTS).add()
                    if (
                        attempt <= self.params.max_retries
                        and self.policy.on_validation_timeout(self, env.now)
                    ):
                        self.metrics.counter(m.RETRIES).add()
                        continue
                    self.cache.drop_all()
                    self.note_cache_drop()
                    # Tell the policy its in-flight exchange is dead (the
                    # reconnect hook is exactly this reset).
                    self.policy.on_reconnect(self, env.now)
                    self._validation_pending = False
                    self._fire_ready()
                    return
        finally:
            self._watchdog_armed = False
