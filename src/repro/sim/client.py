"""The mobile client actor: queries, cache, disconnections, reports.

Per Section 4 of the paper each client loops: think (exponential), issue
a read-one-item query, listen to the next invalidation report, answer
from cache when the report proves the copy valid, else fetch via the
uplink.  "The arrival of a new query is separated from the completion of
the previous query by either an exponentially distributed think time or
an exponentially distributed disconnection time": with probability ``p``
the inter-query gap is a disconnection (during which every report is
missed) instead of think time.  This per-cycle reading is the one
consistent with the paper's absolute throughput levels (see DESIGN.md).

The client is also the scheme's *client context*: policies call
``send_tlb`` / ``send_check_request`` / ``note_cache_drop`` on it.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..cache import CacheEntry, ClientCache
from ..des import Environment, Event
from ..des.monitor import MetricSet
from ..net import Channel, Message, MessageKind, SERVER_ID
from ..reports.sizes import checking_upload_bits, tlb_upload_bits
from ..schemes.base import ClientOutcome
from . import metrics as m
from .energy import ENERGY_RX, ENERGY_TX


class MobileClient:
    """One mobile host in the cell."""

    def __init__(
        self,
        env: Environment,
        client_id: int,
        params,
        policy,
        query_pattern,
        downlink: Channel,
        uplink: Channel,
        metrics: MetricSet,
        streams,
        update_log=None,
        ir_channel: Channel = None,
        query_log=None,
        timeseries=None,
    ):
        self.env = env
        self.client_id = client_id
        self.params = params
        self.policy = policy
        self.query_pattern = query_pattern
        self.downlink = downlink
        self.uplink = uplink
        self.metrics = metrics
        self.update_log = update_log
        self.query_log = query_log
        self.timeseries = timeseries
        self.cache = ClientCache(params.cache_capacity)

        #: Last-heard report timestamp (the paper's ``Tlb``).  Clients
        #: start coherent: at t=0 the (empty) cache matches the database.
        self.tlb: float = 0.0
        self.connected = True
        self._query_active = False
        self._validation_pending = False

        self._ready_waiters: Optional[Event] = None
        self._data_waits: Dict[int, Event] = {}

        self._think_stream = streams.stream(f"client-{client_id}/think")
        self._query_stream = streams.stream(f"client-{client_id}/query")
        self._disc_stream = streams.stream(f"client-{client_id}/disconnect")

        if params.warm_start:
            warm_stream = streams.stream(f"client-{client_id}/warm")
            for item in query_pattern.warm_fill(warm_stream, params.cache_capacity):
                # Version 0 at ts 0: coherent with the untouched database.
                self.cache.insert(CacheEntry(item=item, version=0, ts=0.0))

        downlink.attach(self._on_downlink)
        if ir_channel is not None:
            ir_channel.attach(self._on_downlink)
        env.process(self._query_loop(), name=f"client-{client_id}-query")

    def __repr__(self):
        state = "up" if self.connected else "down"
        return f"<MobileClient {self.client_id} {state} tlb={self.tlb}>"

    # -- scheme-facing context API ----------------------------------------------

    @property
    def is_idle(self) -> bool:
        """True when neither a query nor a validation is in flight."""
        return not self._query_active and not self._validation_pending

    def send_tlb(self, tlb: float):
        """Upload the last-heard timestamp (adaptive schemes)."""
        size = tlb_upload_bits(self.params.timestamp_bits)
        self.metrics.counter(m.UPLINK_VALIDATION_BITS).add(size)
        self.metrics.counter(m.TLB_UPLOADS).add()
        self._charge_tx(size)
        self.uplink.send(
            Message(
                kind=MessageKind.TLB_UPLOAD,
                size_bits=size,
                src=self.client_id,
                dest=SERVER_ID,
                payload=tlb,
            )
        )

    def send_check_request(self, entries, size_bits: Optional[float] = None):
        """Upload cached (item, timestamp) pairs for validity checking."""
        if size_bits is None:
            size_bits = checking_upload_bits(
                len(entries), self.params.db_size, self.params.timestamp_bits
            )
        self.metrics.counter(m.UPLINK_VALIDATION_BITS).add(size_bits)
        self.metrics.counter(m.CHECKS_SENT).add()
        self._charge_tx(size_bits)
        self.uplink.send(
            Message(
                kind=MessageKind.CHECK_REQUEST,
                size_bits=size_bits,
                src=self.client_id,
                dest=SERVER_ID,
                payload=list(entries),
            )
        )

    def note_cache_drop(self):
        """Metrics hook for full cache discards."""
        self.metrics.counter(m.CACHE_DROPS).add()

    def _charge_tx(self, bits: float):
        self.metrics.counter(ENERGY_TX).add(self.params.energy.tx(bits))

    def _charge_rx(self, bits: float):
        self.metrics.counter(ENERGY_RX).add(self.params.energy.rx(bits))

    # -- downlink handling -----------------------------------------------------

    def _on_downlink(self, msg: Message, now: float):
        if not self.connected:
            return
        if msg.kind is MessageKind.INVALIDATION_REPORT:
            self._charge_rx(msg.size_bits)
            outcome = self.policy.on_report(self, msg.payload)
            if outcome is ClientOutcome.READY:
                self._validation_pending = False
                self._fire_ready()
            else:
                self._validation_pending = True
        elif msg.kind is MessageKind.VALIDITY_REPORT and msg.dest == self.client_id:
            if not self._validation_pending:
                # A reply to a check from a previous connection episode
                # (we dozed after uploading and woke before its delivery).
                # Applying it would certify state it never validated —
                # in particular it would clear suspect marks; drop it.
                return
            self._charge_rx(msg.size_bits)
            invalid, certified_at = msg.payload
            self.policy.on_validity_reply(self, invalid, certified_at)
            self._validation_pending = False
            self._fire_ready()
        elif msg.kind is MessageKind.DATA_ITEM:
            payload = msg.payload
            if payload.get("pushed"):
                self._on_pushed_item(msg, payload)
            elif self.client_id in payload["requesters"]:
                self._charge_rx(msg.size_bits)
                waiter = self._data_waits.pop(payload["item"], None)
                if waiter is not None:
                    waiter.succeed(payload)

    def _on_pushed_item(self, msg: Message, payload: dict):
        """Publishing mode: refresh or prefetch a broadcast item.

        A pushed item refreshes an existing cache entry, satisfies a
        pending fetch for the same item, or prefetches into the cache
        when the item lies in this client's hot query region — all
        without uplink traffic.
        """
        item = payload["item"]
        waiter = self._data_waits.pop(item, None)
        interested = (
            waiter is not None
            or item in self.cache
            or (
                self.query_pattern.hot is not None
                and self.query_pattern.hot.contains(item)
            )
        )
        if not interested:
            return
        self._charge_rx(msg.size_bits)
        coherent_ts = payload["coherent_ts"]
        self.cache.insert(
            CacheEntry(item=item, version=payload["version"], ts=coherent_ts),
            suspect=coherent_ts < self.tlb,
        )
        self.metrics.counter(m.PUBLISH_REFRESHES).add()
        if waiter is not None:
            waiter.succeed(payload)

    def _fire_ready(self):
        if self._ready_waiters is not None:
            self._ready_waiters.succeed()
            self._ready_waiters = None

    def _wait_cache_ready(self) -> Event:
        """Event firing at the next report/reply that certifies the cache."""
        if self._ready_waiters is None:
            self._ready_waiters = self.env.event()
        return self._ready_waiters

    # -- query processing ----------------------------------------------------------

    def _inter_query_gap(self):
        """Think or disconnect between queries (the paper's alternation)."""
        env = self.env
        params = self.params
        if self._disc_stream.bernoulli(params.disconnect_prob):
            self.connected = False
            self.metrics.counter(m.DISCONNECTIONS).add()
            self.policy.on_disconnect(self, env.now)
            yield env.timeout(
                self._disc_stream.exponential(params.disconnect_time_mean)
            )
            self.connected = True
            self._validation_pending = False
            self.policy.on_reconnect(self, env.now)
        else:
            yield env.timeout(self._think_stream.exponential(params.think_time_mean))

    def _query_loop(self):
        env = self.env
        params = self.params
        while True:
            yield from self._inter_query_gap()
            self._query_active = True
            started = env.now
            self.metrics.counter(m.QUERIES_GENERATED).add()
            # Listen to the next invalidation report before answering
            # (Section 2), waiting out any pending validation.
            yield self._wait_cache_ready()
            hits = 0
            for _ in range(params.items_per_query):
                item = self.query_pattern.pick(self._query_stream)
                hits += yield from self._access_item(item)
                self.metrics.counter(m.ITEMS_SERVED).add()
            self.metrics.counter(m.QUERIES_ANSWERED).add()
            if self.timeseries is not None:
                self.timeseries["answered"].record(env.now)
            latency = env.now - started
            self.metrics.tally(m.QUERY_LATENCY).observe(latency)
            self.metrics.histogram(m.QUERY_LATENCY, base=0.1).observe(latency)
            if self.query_log is not None:
                from .querylog import QueryRecord

                self.query_log.record(
                    QueryRecord(
                        client_id=self.client_id,
                        started=started,
                        answered=env.now,
                        items=params.items_per_query,
                        hits=hits,
                        misses=params.items_per_query - hits,
                    )
                )
            self._query_active = False

    def _access_item(self, item: int):
        """Serve one item access; returns 1 for a cache hit, 0 for a miss."""
        entry = self.cache.lookup(item)
        if entry is not None:
            self.metrics.counter(m.CACHE_HITS).add()
            if self.timeseries is not None:
                self.timeseries["hits"].record(self.env.now)
            if (
                self.params.track_staleness
                and self.update_log is not None
                and self.update_log.updated_in(item, after=entry.ts, up_to=self.tlb)
            ):
                self.metrics.counter(m.STALE_HITS).add()
            return 1
        self.metrics.counter(m.CACHE_MISSES).add()
        if self.timeseries is not None:
            self.timeseries["misses"].record(self.env.now)
        payload = yield from self._fetch(item)
        coherent_ts = payload["coherent_ts"]
        # A fetch whose response crossed a report boundary carries a value
        # older than the client's knowledge horizon; mark it suspect so
        # the scheme reconciles it at the next report.
        self.cache.insert(
            CacheEntry(item=item, version=payload["version"], ts=coherent_ts),
            suspect=coherent_ts < self.tlb,
        )
        return 0

    def _fetch(self, item: int):
        """Request *item* over the uplink; wait for the broadcast response."""
        waiter = self._data_waits.get(item)
        if waiter is None:
            waiter = self.env.event()
            self._data_waits[item] = waiter
            size = self.params.control_message_bits
            self.metrics.counter(m.UPLINK_REQUEST_BITS).add(size)
            self._charge_tx(size)
            self.uplink.send(
                Message(
                    kind=MessageKind.DATA_REQUEST,
                    size_bits=size,
                    src=self.client_id,
                    dest=SERVER_ID,
                    payload=item,
                )
            )
        payload = yield waiter
        return payload
