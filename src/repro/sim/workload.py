"""Query/update access patterns (paper Table 2).

Both studied workloads update uniformly over the whole database; they
differ in the query side:

* **UNIFORM** — queries uniform over all items (no locality; caching
  barely helps).
* **HOTCOLD** — items 0..99 form a hot region receiving 80 % of every
  client's queries; the rest go uniformly to the remainder.

:class:`AccessPattern` is the general two-region form so ablations can
give updates locality too.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..des import RandomStream


@dataclass(frozen=True)
class Region:
    """A contiguous inclusive id range ``[lo, hi]``."""

    lo: int
    hi: int

    def __post_init__(self):
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"bad region [{self.lo}, {self.hi}]")

    @property
    def size(self) -> int:
        return self.hi - self.lo + 1

    def contains(self, item: int) -> bool:
        return self.lo <= item <= self.hi

    def pick(self, stream: RandomStream) -> int:
        return stream.randint(self.lo, self.hi)


class AccessPattern:
    """Two-region (hot/cold) item chooser.

    Parameters
    ----------
    n_items:
        Database size; regions must fit inside it.
    hot:
        The hot region, or None for a flat pattern.
    hot_prob:
        Probability a pick lands in the hot region.
    cold_excludes_hot:
        When True (default) cold picks avoid the hot region (paper:
        "the other 20 % of the requests are directed to elsewhere in
        the database").
    zipf_alpha:
        When set (``alpha > 0``), queries follow a Zipf(alpha)
        popularity law over the whole database — item ``i`` has rank
        ``i + 1``, so low ids are the popular ones, matching the
        hot-region convention.  Mutually exclusive with ``hot``; when
        unset (the default) every draw takes the exact two-region code
        path above, so existing seeded runs stay bit-identical.
    """

    def __init__(
        self,
        n_items: int,
        hot: Optional[Region] = None,
        hot_prob: float = 0.0,
        cold_excludes_hot: bool = True,
        zipf_alpha: Optional[float] = None,
    ):
        if hot is not None:
            if hot.hi >= n_items:
                raise ValueError("hot region exceeds the database")
            if not 0 <= hot_prob <= 1:
                raise ValueError("hot_prob must be in [0, 1]")
            if cold_excludes_hot and hot.size >= n_items:
                raise ValueError("no cold items remain outside the hot region")
        self.n_items = n_items
        self.hot = hot
        self.hot_prob = hot_prob if hot is not None else 0.0
        self.cold_excludes_hot = cold_excludes_hot
        self.zipf_alpha = zipf_alpha
        self._zipf_cdf: Optional[List[float]] = None
        if zipf_alpha is not None:
            if hot is not None:
                raise ValueError("zipf_alpha and a hot region are exclusive")
            if not zipf_alpha > 0:
                raise ValueError("zipf_alpha must be > 0")
            # Inverse-CDF table: one uniform draw per pick, bisected into
            # the normalised cumulative rank weights (rank k ~ k**-alpha).
            weights = [float(k) ** -zipf_alpha for k in range(1, n_items + 1)]
            total = math.fsum(weights)
            cdf: List[float] = []
            acc = 0.0
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cdf[-1] = 1.0  # guard fsum rounding at the top end
            self._zipf_cdf = cdf

    def __repr__(self):
        if self._zipf_cdf is not None:
            return f"<AccessPattern zipf a={self.zipf_alpha} n={self.n_items}>"
        if self.hot is None:
            return f"<AccessPattern uniform n={self.n_items}>"
        return (
            f"<AccessPattern hot=[{self.hot.lo},{self.hot.hi}]@{self.hot_prob} "
            f"n={self.n_items}>"
        )

    def pick(self, stream: RandomStream) -> int:
        """Draw one item id."""
        if self._zipf_cdf is not None:
            return bisect_right(self._zipf_cdf, stream.uniform())
        if self.hot is not None and stream.bernoulli(self.hot_prob):
            return self.hot.pick(stream)
        if self.hot is None or not self.cold_excludes_hot:
            return stream.randint(0, self.n_items - 1)
        # Uniform over the complement of the hot region: draw an index in
        # [0, n - hot.size) and skip over the hot block.
        idx = stream.randint(0, self.n_items - self.hot.size - 1)
        return idx if idx < self.hot.lo else idx + self.hot.size

    def warm_fill(self, stream: RandomStream, capacity: int) -> list:
        """Distinct items approximating a stationary LRU cache.

        Used for warm-starting clients: hot items dominate steady-state
        occupancy, so they fill first (a random subset when the cache is
        smaller than the hot region); remaining slots draw uniformly from
        the cold complement.
        """
        capacity = min(capacity, self.n_items)
        if self._zipf_cdf is not None:
            # Steady-state LRU occupancy under Zipf is the top ranks.
            return list(range(capacity))
        items: list = []
        if self.hot is not None and self.hot_prob > 0:
            hot_take = min(capacity, self.hot.size)
            items.extend(
                int(i)
                for i in stream.choice_without_replacement(
                    self.hot.lo, self.hot.hi, hot_take
                )
            )
        remaining = capacity - len(items)
        if remaining > 0:
            if self.hot is None:
                items.extend(
                    int(i)
                    for i in stream.choice_without_replacement(
                        0, self.n_items - 1, remaining
                    )
                )
            else:
                span = self.n_items - self.hot.size
                for idx in stream.choice_without_replacement(0, span - 1, remaining):
                    idx = int(idx)
                    items.append(idx if idx < self.hot.lo else idx + self.hot.size)
        return items


@dataclass(frozen=True)
class Workload:
    """A named (query pattern, update pattern) pair for all clients."""

    name: str
    query_hot: Optional[Tuple[int, int]] = None   # inclusive bounds
    query_hot_prob: float = 0.0
    update_hot: Optional[Tuple[int, int]] = None
    update_hot_prob: float = 0.0
    #: Zipf exponent for the query side (ablations beyond Table 2);
    #: ``None`` keeps the paper's two-region patterns bit-identical.
    query_zipf_alpha: Optional[float] = None

    def query_pattern(self, n_items: int, client_id: int = 0) -> AccessPattern:
        """The query pattern for one client.

        Table 2 gives every client the same hot bounds (items 1..100);
        *client_id* is accepted for forward compatibility with
        per-client regions.
        """
        hot = Region(*self.query_hot) if self.query_hot else None
        return AccessPattern(
            n_items,
            hot,
            self.query_hot_prob,
            zipf_alpha=self.query_zipf_alpha,
        )

    def update_pattern(self, n_items: int) -> AccessPattern:
        """The server update pattern."""
        hot = Region(*self.update_hot) if self.update_hot else None
        return AccessPattern(n_items, hot, self.update_hot_prob)


#: Queries and updates uniform over the whole database (Table 2, UNIFORM).
UNIFORM = Workload(name="UNIFORM")

#: 80 % of queries to items 0..99; updates uniform (Table 2, HOTCOLD).
HOTCOLD = Workload(name="HOTCOLD", query_hot=(0, 99), query_hot_prob=0.8)


def workload_by_name(name: str) -> Workload:
    """Look up a preset workload (case-insensitive)."""
    presets = {"uniform": UNIFORM, "hotcold": HOTCOLD}
    try:
        return presets[name.lower()]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; choose from {sorted(presets)}")
