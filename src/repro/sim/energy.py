"""Client radio energy accounting.

The paper's motivation for minimizing uplink traffic is *power
efficiency*: "the power needed for transmission is proportional to the
fourth power of the distance between the two communicating entities"
[Imielinski & Viswanathan], so a transmitted bit costs the mobile orders
of magnitude more than a received bit.  The paper argues its schemes'
packet costs translate into battery life but never quantifies the
conversion; this module does, so the trade-offs of Figures 5-16 can be
re-read in joules.

A client is charged

* ``tx_nj_per_bit`` for every uplink bit it sends (data requests,
  checking uploads, ``Tlb`` timestamps), and
* ``rx_nj_per_bit`` for every downlink bit it consumes: invalidation
  reports it listens to while awake, validity replies addressed to it,
  and data items it requested.  (With selective tuning a client dozes
  through other clients' data transfers, so those are not charged.)
"""

from __future__ import annotations

from dataclasses import dataclass

#: Metric names recorded by the client actors.
ENERGY_TX = "energy.tx_nj"
ENERGY_RX = "energy.rx_nj"


@dataclass(frozen=True)
class EnergyModel:
    """Per-bit radio energy (nanojoules).

    The 100:1 default transmit/receive ratio reflects the paper's
    distance^4 argument at cell-scale ranges; both knobs are free.
    """

    tx_nj_per_bit: float = 1000.0
    rx_nj_per_bit: float = 10.0

    def __post_init__(self):
        if self.tx_nj_per_bit < 0 or self.rx_nj_per_bit < 0:
            raise ValueError("energy costs must be non-negative")

    def tx(self, bits: float) -> float:
        """Energy to transmit *bits* uplink."""
        return self.tx_nj_per_bit * bits

    def rx(self, bits: float) -> float:
        """Energy to receive *bits* from the broadcast channel."""
        return self.rx_nj_per_bit * bits


def energy_per_query_nj(result) -> float:
    """Total client radio energy per answered query, in nanojoules."""
    answered = result.counter("queries.answered")
    if answered == 0:
        return 0.0
    return (
        result.counter(ENERGY_TX) + result.counter(ENERGY_RX)
    ) / answered
