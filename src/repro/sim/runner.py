"""Convenience entry points for running simulations."""

from __future__ import annotations

from typing import Dict, Iterable, List, Union

from ..schemes import Scheme
from .metrics import SimulationResult
from .model import SimulationModel
from .params import SystemParams
from .workload import Workload, workload_by_name


def run_simulation(
    params: SystemParams,
    workload: Union[str, Workload],
    scheme: Union[str, Scheme],
) -> SimulationResult:
    """Build and run one cell simulation; returns its metrics."""
    if isinstance(workload, str):
        workload = workload_by_name(workload)
    if params.roaming is not None:
        # Multi-cell topology: the roaming knob group selects the
        # subclassed model (bit-identical to this path at n_cells = 1).
        from .multicell import MultiCellModel

        return MultiCellModel(params, workload, scheme).run()
    return SimulationModel(params, workload, scheme).run()


def run_schemes(
    params: SystemParams,
    workload: Union[str, Workload],
    schemes: Iterable[Union[str, Scheme]],
) -> Dict[str, SimulationResult]:
    """Run several schemes on identical parameters and seed.

    Named random streams guarantee common random numbers across schemes:
    the same clients think, query and disconnect at the same instants, so
    differences isolate the invalidation strategy.
    """
    results: Dict[str, SimulationResult] = {}
    for scheme in schemes:
        result = run_simulation(params, workload, scheme)
        results[result.scheme] = result
    return results


def run_replications(
    params: SystemParams,
    workload: Union[str, Workload],
    scheme: Union[str, Scheme],
    seeds: Iterable[int],
) -> List[SimulationResult]:
    """Independent replications over *seeds* (for confidence intervals)."""
    return [
        run_simulation(params.with_(seed=seed), workload, scheme) for seed in seeds
    ]
