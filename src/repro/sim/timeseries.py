"""Bucketed time series of simulation activity.

Aggregate totals can hide transients; a :class:`TimeSeries` counts events
into fixed-width time buckets so a run's trajectory is visible — e.g.
whether throughput has reached steady state (the regime the paper
measures) or is still warming up.  Enabled with
``SystemParams(collect_timeseries=True)``; the model then records
queries answered, cache hits and misses per broadcast interval.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence


class TimeSeries:
    """Counts of a single event type in fixed-width time buckets."""

    def __init__(self, bucket_width: float, name: str = "series"):
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        self.name = name
        self.bucket_width = float(bucket_width)
        self._buckets: Dict[int, float] = {}

    def record(self, now: float, amount: float = 1.0):
        """Add *amount* to the bucket containing time *now*."""
        if now < 0:
            raise ValueError("negative time")
        bucket = int(math.floor(now / self.bucket_width))
        self._buckets[bucket] = self._buckets.get(bucket, 0.0) + amount

    @property
    def total(self) -> float:
        """Sum over all buckets."""
        return sum(self._buckets.values())

    def values(self, up_to: float) -> List[float]:
        """Dense per-bucket values covering ``[0, up_to)``."""
        n = int(math.ceil(up_to / self.bucket_width))
        return [self._buckets.get(i, 0.0) for i in range(n)]

    def rate_series(self, up_to: float) -> List[float]:
        """Per-second rates per bucket over ``[0, up_to)``."""
        return [v / self.bucket_width for v in self.values(up_to)]

    def halves_ratio(self, up_to: float) -> float:
        """second-half total / first-half total (1.0 ≈ stationary).

        Returns ``inf`` when the first half is empty but the second is
        not, and 1.0 when both are empty.
        """
        values = self.values(up_to)
        mid = len(values) // 2
        first = sum(values[:mid])
        second = sum(values[mid : 2 * mid])
        if first == 0:
            return float("inf") if second > 0 else 1.0
        return second / first


def stationarity_ratio(values: Sequence[float]) -> float:
    """Generic second-half/first-half ratio of any dense series."""
    mid = len(values) // 2
    first = sum(values[:mid])
    second = sum(values[mid : 2 * mid])
    if first == 0:
        return float("inf") if second > 0 else 1.0
    return second / first
