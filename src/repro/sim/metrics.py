"""Metric names and the result object a simulation run produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..des.monitor import MetricSet

# Counter names (kept in one place so tests and analysis agree).
QUERIES_GENERATED = "queries.generated"
QUERIES_ANSWERED = "queries.answered"
ITEMS_SERVED = "queries.items_served"
CACHE_HITS = "cache.hits"
CACHE_MISSES = "cache.misses"
STALE_HITS = "cache.stale_hits"
CACHE_DROPS = "cache.full_drops"
UPLINK_VALIDATION_BITS = "uplink.validation_bits"
UPLINK_REQUEST_BITS = "uplink.request_bits"
DOWNLINK_IR_BITS = "downlink.ir_bits"
DOWNLINK_DATA_BITS = "downlink.data_bits"
DOWNLINK_VALIDITY_BITS = "downlink.validity_bits"
DATA_COALESCED = "data.coalesced"
TLB_UPLOADS = "adaptive.tlb_uploads"
CHECKS_SENT = "checking.requests"
DISCONNECTIONS = "client.disconnections"
PUBLISH_ITEMS = "publish.items_pushed"
PUBLISH_BITS = "publish.bits"
PUBLISH_REFRESHES = "publish.client_refreshes"
# Fault-tolerance layer (all zero on a pristine medium).
RETRIES = "client.retries"
FETCH_TIMEOUTS = "client.fetch_timeouts"
FETCH_FAILURES = "client.fetch_failures"
VALIDATION_TIMEOUTS = "client.validation_timeouts"
IR_GAPS = "client.ir_gaps"                    # reports provably missed
IR_CORRUPTED = "client.ir_corrupted"          # reports heard but undecodable
MALFORMED_UPLINK = "server.malformed_uplink"
DUPLICATE_UPLINK = "server.duplicate_uplink"
# Loss-adaptive broadcasting (all zero with `loss_adaptation` off).
IR_DUPLICATES = "client.ir_duplicates"        # repeated-report copies discarded
NACKS_SENT = "client.ir_nacks"                # gap hints uploaded
NACK_BITS = "uplink.nack_bits"
NACKS_RECEIVED = "server.nacks_received"
IR_REPEATS = "server.ir_repeats"              # extra report copies broadcast
EST_LOSS = "server.est_loss"                  # final smoothed loss estimate
W_EFF = "adaptive.w_eff"                      # tally: w_eff trajectory
# Chaos injection + safety oracle (all zero / trivially true with chaos off).
SERVER_CRASHES = "chaos.server_crashes"
SERVER_RESTARTS = "chaos.server_restarts"
SERVER_DOWNTIME = "chaos.server_downtime_s"
CLIENT_CRASHES = "chaos.client_crashes"
EPOCH_PURGES = "chaos.epoch_purges"           # clients reacting to a new epoch
UPLINK_SHED_CRASHED = "server.uplink_shed_crashed"
ORACLE_PENDING = "oracle.queries_pending"     # generated - answered at horizon
ORACLE_LIVENESS_OK = "oracle.liveness_ok"     # 1.0 when the ledger balances
# Multi-cell roaming + inter-server sync (all zero at N=1 / roaming off).
ROAM_HANDOFFS = "roam.handoffs"               # voluntary wake-time handoffs
ROAM_EVACUATIONS = "roam.evacuations"         # handoffs forced by a cell outage
ROAM_LAGGED_REPORTS = "roam.lagged_reports"   # reports older than the roamer's Tlb
SYNC_PUSHES = "sync.pushes"                   # eager deltas applied
SYNC_PULLS = "sync.pulls"                     # pull rounds issued
SYNC_RETRIES = "sync.retries"                 # pull retransmissions
SYNC_FAILURES = "sync.failures"               # pull rounds abandoned
SYNC_SNAPSHOTS = "sync.snapshots"             # floor-raising snapshot adoptions
SYNC_LOST_MESSAGES = "sync.lost_messages"     # inter-cell link losses observed
SYNC_SKIPPED_TICKS = "sync.skipped_ticks"     # broadcasts skipped: stalled horizon
COOP_REQUESTS = "coop.requests"               # salvage backfills asked of neighbors
COOP_BACKFILLS = "coop.backfills"             # histories successfully grafted
COOP_REFUSALS = "coop.refusals"               # neighbor could not cover the gap
COOP_FAILURES = "coop.failures"               # every neighbor ask lost/refused
CELL_CRASHES = "chaos.cell_crashes"
CELL_RESTARTS = "chaos.cell_restarts"
UPLINK_SHED_UNSYNCED = "server.uplink_shed_unsynced"

# Population aggregation (repro.sim.population) — all zero with the
# aggregation knob group off (the counters are only bound by the pool).
POOL_ABSORBED = "pool.absorbed"               # dozing clients collapsed to strata
POOL_PROMOTED = "pool.promoted"               # members woken to full fidelity
POOL_SEEDED = "pool.seeded"                   # members parked at build time
POOL_RESIDENTS = "pool.residents_at_horizon"  # raw: members still pooled at end
POOL_PEAK_RESIDENTS = "pool.peak_residents"   # raw: max simultaneous members
POOL_STRATA = "pool.strata_at_horizon"        # raw: distinct strata at end

REPORT_COUNT_PREFIX = "reports."   # + ReportKind.value

QUERY_LATENCY = "query.latency"    # tally
REPORT_SIZE = "report.size_bits"   # tally


@dataclass
class SimulationResult:
    """Everything a finished run reports.

    ``raw`` holds the flattened collector snapshot; the named properties
    expose the metrics the paper's figures plot.  Values are floats for
    metrics proper plus a few string-valued identity keys
    (``kernel.backend``, ``kernel.heap``), hence ``Any``.
    """

    scheme: str
    workload: str
    sim_time: float
    raw: Dict[str, Any] = field(default_factory=dict)

    def counter(self, name: str) -> float:
        """A raw counter value (0.0 when never touched)."""
        return self.raw.get(name, 0.0)

    @property
    def queries_answered(self) -> float:
        """The paper's throughput metric: queries answered in the run."""
        return self.counter(QUERIES_ANSWERED)

    @property
    def throughput_per_second(self) -> float:
        """Queries answered per simulated second."""
        return self.queries_answered / self.sim_time if self.sim_time else 0.0

    @property
    def uplink_cost_per_query(self) -> float:
        """Validation uplink bits per answered query (Figures 6/8/10/...)."""
        answered = self.queries_answered
        if answered == 0:
            return 0.0
        return self.counter(UPLINK_VALIDATION_BITS) / answered

    @property
    def hit_ratio(self) -> float:
        """Cache hits over all item accesses."""
        hits = self.counter(CACHE_HITS)
        total = hits + self.counter(CACHE_MISSES)
        return hits / total if total else 0.0

    @property
    def stale_hits(self) -> float:
        """Consistency violations (must be zero for the exact schemes)."""
        return self.counter(STALE_HITS)

    @property
    def mean_query_latency(self) -> float:
        """Mean seconds from query arrival to answer."""
        return self.raw.get(f"{QUERY_LATENCY}.mean", 0.0)

    @property
    def retries(self) -> float:
        """Retransmissions the clients issued (fetch + validation)."""
        return self.counter(RETRIES)

    @property
    def fetch_failures(self) -> float:
        """Item fetches abandoned after exhausting every retry."""
        return self.counter(FETCH_FAILURES)

    @property
    def ir_duplicates(self) -> float:
        """Repeated-report copies the clients deduplicated."""
        return self.counter(IR_DUPLICATES)

    @property
    def estimated_ir_loss(self) -> float:
        """The server's final smoothed IR-loss estimate (0 when off)."""
        return self.counter(EST_LOSS)

    @property
    def mean_effective_window(self) -> float:
        """Mean ``w_eff`` over the run (0 when loss adaptation is off)."""
        return self.raw.get(f"{W_EFF}.mean", 0.0)

    @property
    def server_crashes(self) -> float:
        """Server crash–recovery cycles the chaos layer injected."""
        return self.counter(SERVER_CRASHES)

    @property
    def epoch_purges(self) -> float:
        """Client purges triggered by an incarnation-epoch change."""
        return self.counter(EPOCH_PURGES)

    @property
    def handoffs(self) -> float:
        """Cell handoffs (voluntary roams + outage evacuations)."""
        return self.counter(ROAM_HANDOFFS) + self.counter(ROAM_EVACUATIONS)

    @property
    def cell_crashes(self) -> float:
        """Whole-cell outages the chaos layer injected."""
        return self.counter(CELL_CRASHES)

    @property
    def coop_backfills(self) -> float:
        """Neighbor-cell history grafts that saved a roamer's salvage."""
        return self.counter(COOP_BACKFILLS)

    @property
    def queries_pending(self) -> float:
        """Queries still in flight at the horizon (issued - answered)."""
        return self.counter(QUERIES_GENERATED) - self.counter(QUERIES_ANSWERED)

    @property
    def liveness_ok(self) -> bool:
        """Whether the run's query ledger balanced (see repro.chaos)."""
        return self.raw.get(ORACLE_LIVENESS_OK, 1.0) == 1.0

    @property
    def oracle_verdict(self) -> str:
        """One-token safety/liveness verdict (SAFE / STALE(n) / STUCK(p))."""
        from ..chaos.oracle import oracle_verdict

        return oracle_verdict(self)

    @property
    def goodput_ratio(self) -> float:
        """Fraction of receiver-deliveries that arrived intact.

        1.0 on a pristine medium (or when no fault model is attached);
        raw throughput times this ratio is the cell's goodput.
        """
        judged = intact = 0.0
        for key, value in self.raw.items():
            if key.endswith(".fault_judged"):
                judged += value
                channel = key[: -len(".fault_judged")]
                intact += (
                    value
                    - self.raw.get(f"{channel}.fault_drops", 0.0)
                    - self.raw.get(f"{channel}.fault_corruptions", 0.0)
                )
        return intact / judged if judged else 1.0

    @property
    def downlink_ir_share(self) -> float:
        """Fraction of delivered downlink bits spent on reports."""
        ir = self.counter(DOWNLINK_IR_BITS)
        total = (
            ir
            + self.counter(DOWNLINK_DATA_BITS)
            + self.counter(DOWNLINK_VALIDITY_BITS)
        )
        return ir / total if total else 0.0

    def summary(self) -> Dict[str, float]:
        """The headline numbers as a plain dict (for printing/benches)."""
        return {
            "queries_answered": self.queries_answered,
            "throughput_per_s": self.throughput_per_second,
            "uplink_bits_per_query": self.uplink_cost_per_query,
            "hit_ratio": self.hit_ratio,
            "mean_latency_s": self.mean_query_latency,
            "stale_hits": self.stale_hits,
            "cache_drops": self.counter(CACHE_DROPS),
            "downlink_ir_share": self.downlink_ir_share,
        }


def finalize(
    metrics: MetricSet, scheme: str, workload: str, sim_time: float, now: float
) -> SimulationResult:
    """Snapshot a :class:`MetricSet` into a :class:`SimulationResult`."""
    return SimulationResult(
        scheme=scheme,
        workload=workload,
        sim_time=sim_time,
        raw=metrics.snapshot(now),
    )
