"""Per-query event log and client-fairness analysis.

Aggregate throughput (the paper's metric) can hide badly served clients:
a sleeper that keeps losing its cache pays the re-fetch bill every time
it wakes.  With ``SystemParams(collect_query_log=True)`` the simulation
records one :class:`QueryRecord` per answered query, exportable as CSV
and summarizable per client (including Jain's fairness index over
per-client service rates).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Union


@dataclass(frozen=True)
class QueryRecord:
    """One answered query."""

    client_id: int
    started: float      # arrival time
    answered: float     # completion time
    items: int
    hits: int
    misses: int

    @property
    def latency(self) -> float:
        """Seconds from arrival to answer."""
        return self.answered - self.started


@dataclass(frozen=True)
class ClientSummary:
    """Per-client aggregate over the log."""

    client_id: int
    queries: int
    mean_latency: float
    hit_ratio: float


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index: 1 = perfectly fair, 1/n = maximally unfair."""
    values = [float(v) for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


class QueryLog:
    """Collects :class:`QueryRecord` entries during a run."""

    def __init__(self):
        self.records: List[QueryRecord] = []

    def __len__(self):
        return len(self.records)

    def record(self, record: QueryRecord):
        """Append one answered query."""
        self.records.append(record)

    def for_client(self, client_id: int) -> List[QueryRecord]:
        """All records of one client, in completion order."""
        return [r for r in self.records if r.client_id == client_id]

    def per_client(self) -> Dict[int, ClientSummary]:
        """Aggregate the log per client."""
        grouped: Dict[int, List[QueryRecord]] = {}
        for r in self.records:
            grouped.setdefault(r.client_id, []).append(r)
        out: Dict[int, ClientSummary] = {}
        for cid, records in grouped.items():
            items = sum(r.items for r in records)
            hits = sum(r.hits for r in records)
            out[cid] = ClientSummary(
                client_id=cid,
                queries=len(records),
                mean_latency=sum(r.latency for r in records) / len(records),
                hit_ratio=hits / items if items else 0.0,
            )
        return out

    def fairness(self) -> float:
        """Jain index over per-client answered-query counts."""
        return jain_index([s.queries for s in self.per_client().values()])

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Export the log; returns the written path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["client_id", "started", "answered", "latency", "items",
                 "hits", "misses"]
            )
            for r in self.records:
                writer.writerow(
                    [r.client_id, f"{r.started:.6f}", f"{r.answered:.6f}",
                     f"{r.latency:.6f}", r.items, r.hits, r.misses]
                )
        return path
