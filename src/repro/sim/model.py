"""Assembly of the full cell simulation (paper Section 4)."""

from __future__ import annotations

from typing import Dict, List, Union

from ..db import Database, UpdateGenerator, UpdateLog
from ..des import Environment, RandomStreams
from ..des._backend import kernel_backend
from ..des.monitor import MetricSet
from ..net import Channel, FaultModel, PRIORITY_CHECK, PRIORITY_IR
from ..schemes import Scheme, get_scheme
from .client import MobileClient
from .metrics import SimulationResult, finalize
from .params import SystemParams
from .querylog import QueryLog
from .timeseries import TimeSeries
from .server import Server
from .workload import Workload


class SimulationModel:
    """One fully wired cell: database, channels, server, clients.

    Construct, then :meth:`run`.  All state is per-instance, so models can
    be built and run independently (e.g. one per parameter-sweep point).
    """

    def __init__(
        self,
        params: SystemParams,
        workload: Workload,
        scheme: Union[str, Scheme],
    ):
        if isinstance(scheme, str):
            scheme = get_scheme(scheme)
        self.params = params
        self.workload = workload
        self.scheme = scheme

        self.env = Environment()
        self.streams = RandomStreams(params.seed)
        self.metrics = MetricSet()
        self.db = Database(params.db_size)
        self.update_log = UpdateLog() if params.track_staleness else None
        self.query_log = QueryLog() if params.collect_query_log else None
        self.timeseries = (
            {
                name: TimeSeries(params.broadcast_interval, name=name)
                for name in ("answered", "hits", "misses")
            }
            if params.collect_timeseries
            else None
        )

        self.downlink = Channel(
            self.env,
            params.downlink_bps,
            name="downlink",
            preempt_threshold=PRIORITY_IR,
            faults=self._fault_model(params.downlink_faults, "downlink"),
        )
        # Tiny control payloads (Tlb, checking) must not starve behind
        # multi-second data requests on a narrow uplink; the paper gives
        # the checking class priority over data traffic.
        self.uplink = Channel(
            self.env,
            params.effective_uplink_bps,
            name="uplink",
            preempt_threshold=PRIORITY_CHECK,
            faults=self._fault_model(params.uplink_faults, "uplink"),
        )

        # Optional dedicated report channel (the paper's multiple-channel
        # future work): reports stop competing with data transfers.
        self.ir_channel = (
            Channel(
                self.env,
                params.ir_channel_bps,
                name="ir-channel",
                preempt_threshold=PRIORITY_IR,
                faults=self._fault_model(params.downlink_faults, "ir-channel"),
            )
            if params.ir_channel_bps is not None
            else None
        )

        self.server_policy = scheme.make_server_policy(params, self.db)
        self.server = Server(
            self.env,
            params,
            self.db,
            self.server_policy,
            downlink=self.downlink,
            uplink=self.uplink,
            metrics=self.metrics,
            ir_channel=self.ir_channel,
        )

        self.updates = UpdateGenerator(
            self.env,
            self.db,
            workload.update_pattern(params.db_size),
            interarrival_mean=params.update_interarrival_mean,
            items_per_update_mean=params.items_per_update_mean,
            stream=self.streams.stream("server/updates"),
            log=self.update_log,
            on_update=self._on_item_update,
        )

        #: Cell count (the multi-cell subclass raises it in _build_cells).
        self.n_cells = 1
        self._build_cells()

        #: Live full-fidelity clients keyed by id.  With aggregation off
        #: the registry holds every client in id order forever; with it
        #: on, absorbed clients leave and promoted ones re-enter (use
        #: :meth:`client_by_id`, not positional indexing).
        self._clients_by_id: Dict[int, MobileClient] = {}
        #: Population-aggregation pool (None with the knob group off —
        #: zero cost, bit-identical to the seed).
        self.population = None
        agg = params.aggregation
        if agg is not None:
            from .population import PopulationPool

            self.population = PopulationPool(
                self.env,
                params,
                self.streams,
                self.metrics,
                promote=self._promote_member,
                release=self._release_client,
            )
        for cid in range(params.n_clients):
            cell_id, downlink, uplink, ir_channel = self._client_home(cid)
            if (
                self.population is not None
                and cid >= agg.k_exact
                and agg.start_in_pool > 0.0
                and self.population.seed_stream.bernoulli(agg.start_in_pool)
            ):
                # Steady-state initial condition: park this client
                # mid-doze without ever constructing it.  Its stratum is
                # the signature warm_fill would have produced.
                if params.warm_start:
                    from .population import warm_signature

                    n_hot, n_cold = warm_signature(
                        workload.query_pattern(params.db_size, cid),
                        params.cache_capacity,
                    )
                else:
                    n_hot, n_cold = 0, 0
                self.population.seed_parked(cid, cell_id, n_hot, n_cold)
                continue
            self._clients_by_id[cid] = MobileClient(
                self.env,
                client_id=cid,
                params=params,
                policy=scheme.make_client_policy(params, cid),
                query_pattern=workload.query_pattern(params.db_size, cid),
                downlink=downlink,
                uplink=uplink,
                metrics=self.metrics,
                streams=self.streams,
                update_log=self.update_log,
                ir_channel=ir_channel,
                query_log=self.query_log,
                timeseries=self.timeseries,
                cell_id=cell_id,
                pool=self.population,
            )

        #: Endpoint-failure injection (None with chaos off — zero cost).
        self.chaos = None
        if params.chaos is not None and not params.chaos.is_null:
            # Lazy import: repro.chaos.injector imports repro.sim.
            from ..chaos.injector import ChaosInjector

            self.chaos = ChaosInjector(self, params.chaos)

    # -- client registry ------------------------------------------------------

    @property
    def clients(self) -> List[MobileClient]:
        """Live full-fidelity clients (pooled members are not actors)."""
        return list(self._clients_by_id.values())

    def client_by_id(self, client_id: int) -> MobileClient:
        """The live client with this id (KeyError if absorbed/unseeded)."""
        return self._clients_by_id[client_id]

    # -- population aggregation (repro.sim.population) ------------------------

    def _promote_member(self, member, now: float) -> MobileClient:
        """Pool hook: rebuild one member as a full-fidelity client.

        The cache is reconstructed consistent with the member's stratum
        (every entry an honest ``Tlb``-time copy), the scheme policy is
        the one that rode the pool (or a fresh one for seeded members),
        and the per-client RNG streams resume exactly where the absorbed
        actor left them (streams are cached by name).
        """
        from .population import ResumeState, rebuild_cache

        params = self.params
        pool = self.population
        cid = member.client_id
        pattern = self.workload.query_pattern(params.db_size, cid)
        tlb = pool.bucket_time(member.tlb_bucket)
        cache = rebuild_cache(
            self.streams.stream(f"client-{cid}/pool"),
            pattern,
            params.cache_capacity,
            member.n_hot,
            member.n_cold,
            tlb,
            update_log=self.update_log,
        )
        policy = member.policy
        if policy is None:
            policy = self.scheme.make_client_policy(params, cid)
        resume = ResumeState(
            cache=cache,
            tlb=tlb,
            report_epoch=member.report_epoch,
            report_cell=member.report_cell,
            clock_rate=member.clock_rate,
            clock_skew=member.clock_skew,
        )
        cell_id = member.cell_id
        downlink, uplink, ir_channel = self._cell_channels(cell_id)
        client = MobileClient(
            self.env,
            client_id=cid,
            params=params,
            policy=policy,
            query_pattern=pattern,
            downlink=downlink,
            uplink=uplink,
            metrics=self.metrics,
            streams=self.streams,
            update_log=self.update_log,
            ir_channel=ir_channel,
            query_log=self.query_log,
            timeseries=self.timeseries,
            cell_id=cell_id,
            pool=pool,
            resume=resume,
        )
        self._clients_by_id[cid] = client
        self._finish_promote(client)
        client.wake_from_pool(now)
        return client

    def _release_client(self, client: MobileClient):
        """Pool hook: an absorbed client leaves the live registry."""
        del self._clients_by_id[client.client_id]

    # -- subclass hooks (multi-cell; see repro.sim.multicell) -----------------

    def _cell_channels(self, cell_id: int):
        """Hook: ``(downlink, uplink, ir_channel)`` serving *cell_id*."""
        return self.downlink, self.uplink, self.ir_channel

    def _finish_promote(self, client: MobileClient):
        """Hook: let subclasses finish wiring a promoted client."""

    def _fault_model(self, config, channel_name: str):
        """A seeded :class:`FaultModel` for one channel (None with faults off)."""
        if config is None:
            return None
        return FaultModel(config, self.streams.stream(f"faults/{channel_name}"))

    def _build_cells(self):
        """Hook: construct the extra cells.  The base model is one cell."""

    def _client_home(self, cid: int):
        """Hook: ``(cell_id, downlink, uplink, ir_channel)`` for a client."""
        return 0, self.downlink, self.uplink, self.ir_channel

    def _collect_extra_telemetry(self, result: SimulationResult):
        """Hook: let subclasses append telemetry to the finished result."""

    def _on_item_update(self, item: int, now: float):
        server = self.server
        if server.crashed:
            # A dead process observes nothing: the update reaches the
            # durable database (the generator already committed it) but
            # no in-memory policy state — exactly the knowledge the
            # restarted incarnation must NOT pretend to have.
            return
        new_version = int(self.db.version[item])
        server.policy.on_item_update(item, new_version - 1, new_version)

    def run(self) -> SimulationResult:
        """Run to ``params.simulation_time`` and snapshot the metrics."""
        self.env.run(until=self.params.simulation_time)
        result = finalize(
            self.metrics,
            scheme=self.scheme.name,
            workload=self.workload.name,
            sim_time=self.params.simulation_time,
            now=self.env.now,
        )
        # Kernel telemetry: lets the perf benches compute events/second
        # without reaching into Environment internals.
        result.raw["kernel.events_scheduled"] = float(self.env.scheduled_events)
        # Backend identity (strings, not metrics): which build of the kernel
        # tier ran and which heap held the schedule.  Excluded from
        # fault-equivalence comparisons alongside the other kernel.* keys.
        result.raw["kernel.backend"] = kernel_backend()
        result.raw["kernel.heap"] = self.env.heap_kind
        # Channel telemetry joins the raw snapshot.
        result.raw["downlink.utilization"] = self.downlink.stats.utilization(
            self.env.now
        )
        result.raw["uplink.utilization"] = self.uplink.stats.utilization(self.env.now)
        result.raw["downlink.bits_delivered"] = self.downlink.stats.bits_delivered
        result.raw["uplink.bits_delivered"] = self.uplink.stats.bits_delivered
        channels = [self.downlink, self.uplink]
        if self.ir_channel is not None:
            channels.append(self.ir_channel)
        for channel in channels:
            fm = channel.faults
            if fm is None:
                continue
            stats = fm.stats
            result.raw[f"{channel.name}.fault_judged"] = float(stats.judged)
            result.raw[f"{channel.name}.fault_drops"] = float(stats.dropped)
            result.raw[f"{channel.name}.fault_corruptions"] = float(stats.corrupted)
            result.raw[f"{channel.name}.fault_dropped_bits"] = stats.dropped_bits
            result.raw[f"{channel.name}.fault_corrupted_bits"] = stats.corrupted_bits
            result.raw[f"{channel.name}.fault_bursts"] = float(stats.bursts)
        # Liveness accounting (the safety oracle's second half): emitted
        # unconditionally so chaos-off comparisons carry the same keys.
        from ..chaos.oracle import account_liveness

        ledger = account_liveness(result, self.params.n_clients)
        result.raw["oracle.queries_pending"] = float(ledger.pending)
        result.raw["oracle.liveness_ok"] = 1.0 if ledger.ok else 0.0
        # Bounded salvage-state telemetry (adaptive schemes only).  Read
        # through the server: a chaos restart swaps the policy instance.
        buffer = getattr(self.server.policy, "tlb_buffer", None)
        if buffer is not None:
            result.raw["server.tlb_duplicates"] = float(buffer.duplicates)
            result.raw["server.tlb_overflow"] = float(buffer.overflows)
        # Loss-adaptive control-loop telemetry (knob group on only).
        controller = self.server.loss_controller
        if controller is not None:
            from .metrics import EST_LOSS

            result.raw[EST_LOSS] = controller.estimate
            result.raw["server.w_eff_last"] = float(controller.w_eff)
        # Population-pool telemetry (aggregation knob group on only, so
        # exact runs keep a key-identical snapshot).
        pool = self.population
        if pool is not None:
            from .metrics import POOL_PEAK_RESIDENTS, POOL_RESIDENTS, POOL_STRATA

            result.raw[POOL_RESIDENTS] = float(pool.residents)
            result.raw[POOL_PEAK_RESIDENTS] = float(pool.peak_residents)
            result.raw[POOL_STRATA] = float(len(pool.strata))
            result.raw["clients.live_at_horizon"] = float(len(self._clients_by_id))
        self._collect_extra_telemetry(result)
        return result
