"""Simulation model of the paper's Section 4: parameters, workloads,
server/client actors, metrics, and runners."""

from .client import MobileClient
from .metrics import SimulationResult, finalize
from .model import SimulationModel
from .energy import EnergyModel, energy_per_query_nj
from .params import SystemParams
from .population import AggregationConfig, PopulationPool, rebuild_cache
from .querylog import ClientSummary, QueryLog, QueryRecord, jain_index
from .timeseries import TimeSeries, stationarity_ratio
from .runner import run_replications, run_schemes, run_simulation
from .server import Server
from .workload import (
    HOTCOLD,
    UNIFORM,
    AccessPattern,
    Region,
    Workload,
    workload_by_name,
)

__all__ = [
    "AccessPattern",
    "AggregationConfig",
    "PopulationPool",
    "rebuild_cache",
    "HOTCOLD",
    "MobileClient",
    "Region",
    "Server",
    "SimulationModel",
    "ClientSummary",
    "EnergyModel",
    "QueryLog",
    "QueryRecord",
    "SimulationResult",
    "SystemParams",
    "TimeSeries",
    "stationarity_ratio",
    "energy_per_query_nj",
    "jain_index",
    "UNIFORM",
    "Workload",
    "finalize",
    "run_replications",
    "run_schemes",
    "run_simulation",
    "workload_by_name",
]
