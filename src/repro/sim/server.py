"""The Mobile Support Station: broadcasts reports, answers uplink traffic.

One server covers the cell (paper Section 2).  Responsibilities:

* broadcast the scheme's invalidation report at exactly ``i * L`` —
  the downlink's preemptive IR priority guarantees the start time;
* answer data requests, *coalescing* concurrent requests for the same
  item into one broadcast transmission (broadcast medium);
* answer checking uploads with validity reports and forward ``Tlb``
  uploads to the scheme policy;
* when ``params.loss_adaptation`` is set, run the loss-adaptive control
  loop: fold the cell's NACK hints and salvage traffic into an IR-loss
  estimate each tick, advertise the widened ``effective_window_seconds``
  to the scheme policy, and repeat each report ``r`` times.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..db.database import NEVER
from ..des import Environment, LOW
from ..des.monitor import MetricSet
from ..net import BROADCAST, Channel, Message, MessageKind, SERVER_ID
from ..schemes.loss_adaptive import LossAdaptiveController
from . import metrics as m


class Server:
    """The cell's server actor."""

    def __init__(
        self,
        env: Environment,
        params,
        db,
        policy,
        downlink: Channel,
        uplink: Channel,
        metrics: MetricSet,
        ir_channel: Channel = None,
        cell_id: int = 0,
    ):
        self.env = env
        self.params = params
        self.db = db
        #: Which cell this server covers (0 = the gateway, colocated with
        #: the origin database — today's single-cell server exactly).
        self.cell_id = cell_id
        #: Inter-server synchronizer keeping a *replica* database current
        #: (see repro.sim.propagation).  None on the gateway and at N=1:
        #: this server reads the origin database directly and its
        #: knowledge horizon is always ``env.now``.
        self.sync = None
        #: Cooperative-salvage endpoint (multi-cell only; None = answer
        #: every upload from local history, the single-cell behaviour).
        self.coop = None
        #: Timestamp of the last report broadcast (fed cells only): a
        #: stalled knowledge horizon must skip ticks, never re-broadcast
        #: an instant already reported.
        self._last_report_ts = 0.0
        self.policy = policy
        self.downlink = downlink
        self.uplink = uplink
        #: Channel carrying invalidation reports (the shared downlink by
        #: default; a dedicated channel in the multiple-channel extension).
        self.ir_channel = ir_channel if ir_channel is not None else downlink
        self.metrics = metrics
        #: Loss-adaptive control loop (None = paper-faithful fixed window).
        self.loss_controller: Optional[LossAdaptiveController] = (
            LossAdaptiveController(
                params.loss_adaptation,
                window_intervals=params.window_intervals,
                broadcast_interval=params.broadcast_interval,
                expected_listeners=params.n_clients,
            )
            if params.loss_adaptation is not None
            else None
        )
        #: Widened window span advertised to window-based scheme policies
        #: (None = use ``params.window_seconds``; see schemes.base).
        self.effective_window_seconds: Optional[float] = None
        #: Incarnation epoch, stamped into every broadcast report; bumped
        #: by :meth:`restart` so clients can detect that the history
        #: behind their ``Tlb`` no longer exists (see docs/PROTOCOLS.md).
        self.epoch = 0
        #: True while the chaos layer holds the server down: broadcasts
        #: are skipped and uplink arrivals are shed.
        self.crashed = False
        #: item -> queued DATA_ITEM message (coalescing window).
        self._pending_data: Dict[int, Message] = {}
        # Hot-path metric handles, resolved once (docs/PERFORMANCE.md).
        self._m_downlink_ir_bits = metrics.bind_counter(m.DOWNLINK_IR_BITS)
        self._m_downlink_data_bits = metrics.bind_counter(m.DOWNLINK_DATA_BITS)
        self._m_downlink_validity_bits = metrics.bind_counter(
            m.DOWNLINK_VALIDITY_BITS
        )
        self._m_data_coalesced = metrics.bind_counter(m.DATA_COALESCED)
        self._m_duplicate_uplink = metrics.bind_counter(m.DUPLICATE_UPLINK)
        self._m_malformed_uplink = metrics.bind_counter(m.MALFORMED_UPLINK)
        self._m_report_size = metrics.bind_tally(m.REPORT_SIZE)
        #: Publishing-mode round-robin cursor over the publish region.
        self._publish_cursor = 0
        # The server watches its own downlink to close coalescing windows
        # synchronously at delivery time; that is sender-side bookkeeping,
        # not a radio reception, so it is wired (immune to fault
        # injection).  The uplink attachment IS the radio reception.
        downlink.attach(self._on_downlink_delivered, wired=True)
        uplink.attach(self._on_uplink)
        self.process = env.process(self._broadcast_loop(), name="server-broadcast")

    # -- broadcast loop --------------------------------------------------------

    def _broadcast_loop(self):
        env = self.env
        interval = self.params.broadcast_interval
        tick = 0
        while True:
            tick += 1
            # LOW priority: same-instant database updates commit first, so
            # the report reflects every update with ts <= Ti.
            yield env.timeout(tick * interval - env.now, priority=LOW)
            if self.crashed:
                # Down: no report this tick.  The loop keeps counting
                # ticks so the broadcast timeline (i * L instants) is
                # preserved across the outage — a restarted server
                # resumes the exact cadence clients expect.
                continue
            sync = self.sync
            if sync is None:
                report_now = env.now
            else:
                # A fed cell's reports speak as of its knowledge horizon,
                # not wall-clock time: the replica is complete exactly up
                # to the horizon, so a report stamped there makes only
                # claims it can back.  A stalled horizon (feed down, link
                # out) skips the tick — silence degrades gracefully into
                # the clients' missed-report machinery, a lie does not.
                report_now = sync.horizon
                if report_now <= self._last_report_ts:
                    self.metrics.counter(m.SYNC_SKIPPED_TICKS).add()
                    continue
                self._last_report_ts = report_now
            if self.loss_controller is not None:
                # Fold last interval's loss evidence into the estimate and
                # advertise the (possibly widened) window to the policy.
                w_eff = self.loss_controller.tick()
                self.effective_window_seconds = (
                    self.loss_controller.effective_window_seconds
                )
                self.metrics.tally(m.W_EFF).observe(float(w_eff))
            report = self.policy.build_report(self, report_now)
            report.epoch = self.epoch
            report.cell = self.cell_id
            self.metrics.counter(
                f"{m.REPORT_COUNT_PREFIX}{report.kind.value}"
            ).add()
            self._m_report_size.observe(report.size_bits)
            for copy in range(self.params.ir_repeat):
                # Repetition coding: every copy is a full-size broadcast —
                # the downlink pays for redundancy, honestly.
                if copy > 0:
                    self.metrics.counter(m.IR_REPEATS).add()
                self._m_downlink_ir_bits.add(report.size_bits)
                self.ir_channel.send(
                    Message(
                        kind=MessageKind.INVALIDATION_REPORT,
                        size_bits=report.size_bits,
                        src=SERVER_ID,
                        dest=BROADCAST,
                        payload=report,
                    )
                )
            if self.params.publish_per_interval > 0:
                self._publish_round()

    def _publish_round(self):
        """Publishing mode: push the next k region items after the report.

        Pushed items ride the data priority class, so publishing trades
        on-demand fetch bandwidth for listen-only refreshes.
        """
        lo, hi = self.params.publish_region
        span = hi - lo + 1
        for _ in range(self.params.publish_per_interval):
            item = lo + self._publish_cursor % span
            self._publish_cursor += 1
            version, _ts = self.db.read(item)
            msg = Message(
                kind=MessageKind.DATA_ITEM,
                size_bits=self.params.item_size_bits,
                src=SERVER_ID,
                dest=BROADCAST,
                payload={
                    "item": item,
                    "version": version,
                    "coherent_ts": self.env.now,
                    "requesters": frozenset(),
                    "pushed": True,
                },
            )
            self.metrics.counter(m.PUBLISH_ITEMS).add()
            self.metrics.counter(m.PUBLISH_BITS).add(msg.size_bits)
            self.downlink.send(msg)

    # -- crash-recovery (driven by repro.chaos.ChaosInjector) -------------------

    def crash(self, now: float):
        """Take the process down: volatile state is gone, nothing answers.

        The broadcast loop keeps ticking (and skipping) so the ``i * L``
        timeline survives the outage; uplink arrivals are shed in
        :meth:`_on_uplink`.  In-flight downlink transmissions complete —
        those bits already left the antenna.
        """
        self.crashed = True
        # The coalescing windows die with the process: requests folded
        # into a queued-but-unsent response will never be re-answered, so
        # their clients' retry timers must do the recovering.
        self._pending_data.clear()

    def restart(self, now: float, policy, replica_db=None):
        """Bring a fresh incarnation up at *now* with a rebuilt *policy*.

        Everything in-memory is rebuilt from the durable database: update
        *times* are gone (``db.forget_history``), so the new incarnation
        treats *now* as its history floor; the epoch bump tells clients
        their old ``Tlb`` certifications are void.

        A *fed* cell restarts differently: its database was never durable
        (it is a replica), so the caller hands in a blank *replica_db*
        and the synchronizer resyncs it from the feed — until then the
        knowledge horizon is ``NEVER`` and uplink arrivals are shed.
        """
        if replica_db is None:
            self.db.forget_history(now)
        else:
            self.db = replica_db
        self.policy = policy
        self.epoch += 1
        self.crashed = False
        if self.params.loss_adaptation is not None:
            # The loss estimator restarts cold, like any in-memory EWMA.
            self.loss_controller = LossAdaptiveController(
                self.params.loss_adaptation,
                window_intervals=self.params.window_intervals,
                broadcast_interval=self.params.broadcast_interval,
                expected_listeners=self.params.n_clients,
            )
        self.effective_window_seconds = None
        self._publish_cursor = 0

    # -- uplink handling ---------------------------------------------------------

    def _knowledge_now(self, now: float) -> float:
        """The instant this cell's database is complete through.

        ``now`` itself for the gateway; a fed cell's replica only
        reflects updates up to its sync horizon, so every policy call
        (report building, checking answers, ``Tlb`` handling) and every
        served item must speak as of that earlier instant.
        """
        sync = self.sync
        return now if sync is None else sync.horizon

    def _on_uplink(self, msg: Message, now: float):
        if self.crashed:
            # A dead process answers nothing: shed the arrival so the
            # client's timeout/retry lifecycle engages instead of the
            # request queueing forever against a dead receiver.
            self.metrics.counter(m.UPLINK_SHED_CRASHED).add()
            return
        if self.sync is not None and self.sync.horizon == NEVER:
            # A restarted replica that has not resynced yet knows nothing
            # at all — answering would fabricate knowledge.  Shed like a
            # crash; the resync completes within the next sync round.
            self.metrics.counter(m.UPLINK_SHED_UNSYNCED).add()
            return
        if msg.corrupted or not self._well_formed(msg):
            # Bit errors on the uplink (or garbage from a buggy client)
            # must never crash the cell's single server: count and shed.
            self._m_malformed_uplink.add()
            return
        if msg.kind is MessageKind.TLB_UPLOAD:
            if self.loss_controller is not None:
                # Salvage traffic is (weak) loss evidence: clients that
                # fell out of the window may have lost reports on the air.
                self.loss_controller.observe_salvage()
            coop = self.coop
            if coop is not None and msg.payload < self.policy.salvage_floor(self):
                # The roamer's Tlb predates our history floor: ask the
                # neighbors to backfill before the policy judges it.
                coop.backfill_then(msg.payload, self._resume_tlb, msg)
            else:
                self.policy.on_tlb(self, msg.src, msg.payload, self._knowledge_now(now))
        elif msg.kind is MessageKind.IR_NACK:
            self.metrics.counter(m.NACKS_RECEIVED).add()
            if self.loss_controller is not None:
                self.loss_controller.observe_nack(msg.payload)
        elif msg.kind is MessageKind.CHECK_REQUEST:
            self._answer_check(msg, now)
        elif msg.kind is MessageKind.DATA_REQUEST:
            self._serve_data(msg, now)

    def _well_formed(self, msg: Message) -> bool:
        """Structural validation of an uplink message's payload."""
        payload = msg.payload
        if msg.kind is MessageKind.TLB_UPLOAD:
            return isinstance(payload, (int, float)) and payload >= 0
        if msg.kind is MessageKind.IR_NACK:
            return (
                isinstance(payload, int)
                and not isinstance(payload, bool)
                and payload >= 1
            )
        if msg.kind is MessageKind.CHECK_REQUEST:
            return isinstance(payload, list)
        if msg.kind is MessageKind.DATA_REQUEST:
            return (
                isinstance(payload, int)
                and not isinstance(payload, bool)
                and 0 <= payload < self.db.n_items
            )
        # Downlink-only kinds have no business on the uplink.
        return False

    def _resume_tlb(self, msg: Message):
        """Dispatch a ``Tlb`` upload deferred for cooperative backfill."""
        self.policy.on_tlb(
            self, msg.src, msg.payload, self._knowledge_now(self.env.now)
        )

    def _answer_check(self, msg: Message, now: float):
        coop = self.coop
        if coop is not None and msg.payload:
            need = min(ts for _item, ts in msg.payload)
            if need < self.policy.salvage_floor(self):
                coop.backfill_then(need, self._finish_check, msg)
                return
        self._finish_check(msg)

    def _finish_check(self, msg: Message):
        invalid, certified_at, reply_bits = self.policy.on_check_request(
            self, msg.src, msg.payload, self._knowledge_now(self.env.now)
        )
        self._m_downlink_validity_bits.add(reply_bits)
        self.downlink.send(
            Message(
                kind=MessageKind.VALIDITY_REPORT,
                size_bits=reply_bits,
                src=SERVER_ID,
                dest=msg.src,
                payload=(invalid, certified_at),
            )
        )

    def _serve_data(self, msg: Message, now: float):
        item = msg.payload
        pending = self._pending_data.get(item)
        if pending is not None and self.params.coalesce_data_responses:
            requesters = pending.payload["requesters"]
            if msg.src in requesters:
                # A retransmission (the client's retry layer timed out
                # while our response was still queued): idempotent.
                self._m_duplicate_uplink.add()
                return
            # A transmission of this item is already queued or on the air:
            # the broadcast serves this requester for free.
            requesters.add(msg.src)
            self._m_data_coalesced.add()
            return
        version, _ts = self.db.read(item)
        requesters = {msg.src}
        data = Message(
            kind=MessageKind.DATA_ITEM,
            size_bits=self.params.item_size_bits,
            src=SERVER_ID,
            dest=BROADCAST,
            payload={
                "item": item,
                "version": version,
                # The value reflects all updates up to the cell's
                # knowledge horizon (= this instant on the gateway); any
                # later update will appear in a subsequent report.
                "coherent_ts": self._knowledge_now(now),
                "requesters": requesters,
            },
            # Same (mutable) set: the channel dispatches the broadcast
            # only to requesters coalesced by delivery time.
            recipients=requesters,
        )
        self._pending_data[item] = data
        self._m_downlink_data_bits.add(data.size_bits)
        self.downlink.send(data)

    def _on_downlink_delivered(self, msg: Message, now: float):
        if msg.kind is MessageKind.DATA_ITEM:
            # Close the coalescing window the moment the bits are out.
            # (Guard against pushed copies of the same item: only the
            # pending on-demand message closes its own window.)
            item = msg.payload["item"]
            if self._pending_data.get(item) is msg:
                del self._pending_data[item]
