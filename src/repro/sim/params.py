"""System parameters (paper Table 1) and derived quantities."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from ..net.faults import FaultConfig
from ..reports.sizes import DEFAULT_TIMESTAMP_BITS
from ..schemes.loss_adaptive import LossAdaptationConfig
from ..topology import RoamingConfig
from .energy import EnergyModel
from .population import AggregationConfig

if TYPE_CHECKING:  # ARCH001: chaos sits above sim in the layering DAG
    from ..chaos.schedule import ChaosConfig


@dataclass(frozen=True)
class SystemParams:
    """Tunable knobs of the simulated cell; defaults follow Table 1.

    Notes
    -----
    * ``items_per_query`` defaults to 1 (Section 2: "simple requests to
      read the most recent copy of a data item"); Table 1's "mean data
      items ref. by a query = 10" is exposed through this knob for
      sensitivity studies (see DESIGN.md).
    * ``uplink_bps`` defaults to the downlink rate; the asymmetric
      experiments (Figures 15-16) lower it to 1-10 % of downlink.
    """

    simulation_time: float = 100_000.0          # seconds
    n_clients: int = 100
    db_size: int = 10_000                       # data items
    item_size_bytes: int = 8192
    buffer_fraction: float = 0.02               # client cache / db size
    broadcast_interval: float = 20.0            # L, seconds
    downlink_bps: float = 10_000.0
    uplink_bps: Optional[float] = None          # None -> same as downlink
    control_message_bytes: int = 512
    think_time_mean: float = 100.0              # seconds (exponential)
    items_per_query: int = 1
    update_interarrival_mean: float = 100.0     # seconds (exponential)
    items_per_update_mean: float = 5.0
    disconnect_time_mean: float = 4000.0        # seconds (exponential)
    disconnect_prob: float = 0.1                # per broadcast interval
    window_intervals: int = 10                  # w
    timestamp_bits: int = DEFAULT_TIMESTAMP_BITS
    seed: int = 0
    #: Serve concurrent requests for the same item with one broadcast.
    coalesce_data_responses: bool = True
    #: Record per-query staleness ground truth (cheap; keep on).
    track_staleness: bool = True
    #: Start clients with stationary-LRU cache contents, coherent with the
    #: untouched t=0 database.  Removes cold-start bias so short runs
    #: measure the steady state the paper's 100 000 s runs reach.
    warm_start: bool = True
    #: Per-bit radio energy model (see :mod:`repro.sim.energy`).
    energy: EnergyModel = EnergyModel()
    #: Record one QueryRecord per answered query (repro.sim.querylog).
    collect_query_log: bool = False
    #: Record per-interval activity series (repro.sim.timeseries).
    collect_timeseries: bool = False
    #: Broadcast invalidation reports on their own channel instead of
    #: sharing the data downlink — the paper's "multiple-channel
    #: environment" future work.  ``ir_channel_bps`` sizes that channel
    #: (None keeps reports on the shared downlink).
    ir_channel_bps: Optional[float] = None
    #: Publishing mode (paper Section 1): push this many items per
    #: broadcast interval, round-robin over ``publish_region``, so
    #: listening clients refresh hot data without uplink requests.
    #: 0 disables pushing.
    publish_per_interval: int = 0
    #: Inclusive id range ``(lo, hi)`` the server publishes from
    #: (required when ``publish_per_interval`` > 0).
    publish_region: Optional[tuple] = None
    #: Fault injection on the downlink (and the dedicated IR channel, if
    #: any): a :class:`repro.net.FaultConfig`, or None for a pristine
    #: medium.  An all-zero config is bit-identical to None.
    downlink_faults: Optional[FaultConfig] = None
    #: Fault injection on the shared uplink.
    uplink_faults: Optional[FaultConfig] = None
    #: Client request lifecycle: seconds to wait for the response to an
    #: uplink request (data fetch, checking upload, Tlb rescue) before
    #: retransmitting.  ``None`` disables the whole timeout/retry layer —
    #: the seed's fire-and-forget behaviour.  Size it well above the
    #: uncontended response latency or spurious retransmissions will
    #: waste the uplink.
    uplink_timeout: Optional[float] = None
    #: Retransmissions after the first attempt before giving up.  A
    #: failed fetch leaves the query item unserved; a failed validation
    #: degrades to a full cache drop (the next report resynchronises).
    max_retries: int = 3
    #: Exponential backoff multiplier applied per retry attempt.
    backoff_base: float = 2.0
    #: Uniform +-fraction jitter on each backoff delay (desynchronises
    #: retry storms after a shared loss burst).
    backoff_jitter: float = 0.25
    #: Bound on the adaptive server's per-interval salvage state: at most
    #: this many distinct clients' ``Tlb`` uploads are buffered between
    #: broadcasts; later arrivals are counted and shed.  None = unbounded.
    max_pending_tlbs: Optional[int] = None
    #: Loss-adaptive broadcasting (see :mod:`repro.schemes.loss_adaptive`):
    #: the server estimates the IR-loss rate from client NACK hints and
    #: salvage traffic, widens the window-report span to ``w_eff`` in
    #: ``[window_intervals, w_max]``, and optionally repeats each report
    #: ``repeat`` times.  ``None`` (the default) disables the whole loop —
    #: bit-identical to the paper-faithful seed behaviour.
    loss_adaptation: Optional[LossAdaptationConfig] = None
    #: Deterministic endpoint-failure injection (see :mod:`repro.chaos`):
    #: seeded server crash–recovery cycles (with incarnation epochs),
    #: client crashes, and per-client clock skew/drift.  ``None`` (the
    #: default) injects nothing and is bit-identical to the seed; an
    #: all-zero :class:`ChaosConfig` is equally inert.
    chaos: Optional[ChaosConfig] = None
    #: Multi-cell topology + roaming knob group (see :mod:`repro.topology`):
    #: a cell graph of per-cell servers kept in sync by inter-server
    #: propagation, with clients handing off between cells.  ``None``
    #: (the default) is today's single cell; an N=1 topology is
    #: bit-identical to it (pinned by tests/sim/test_multicell.py).
    roaming: Optional[RoamingConfig] = None
    #: Population aggregation knob group (see :mod:`repro.sim.population`):
    #: keep the K "interesting" clients full-fidelity and collapse the
    #: long-dozing tail into a counts-per-stratum pool, promoting members
    #: back to full clients when their seeded reconnects fire.  ``None``
    #: (the default) simulates every client exactly and is bit-identical
    #: to the seed (pinned by tests/sim/test_golden.py); the aggregated ==
    #: exact equivalence is pinned by tests/sim/test_population_differential.py.
    aggregation: Optional[AggregationConfig] = None
    #: Promote staleness tracking into a hard safety oracle: any stale
    #: cache hit raises :class:`repro.chaos.StalenessViolation` with a
    #: full diagnostic trace instead of merely incrementing the counter.
    #: Requires ``track_staleness``.
    strict_staleness: bool = False

    def __post_init__(self):
        if self.simulation_time <= 0:
            raise ValueError("simulation_time must be positive")
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.db_size < 1:
            raise ValueError("db_size must be positive")
        if not 0 < self.buffer_fraction <= 1:
            raise ValueError("buffer_fraction must be in (0, 1]")
        if self.broadcast_interval <= 0:
            raise ValueError("broadcast_interval must be positive")
        if self.downlink_bps <= 0:
            raise ValueError("downlink_bps must be positive")
        if self.uplink_bps is not None and self.uplink_bps <= 0:
            raise ValueError("uplink_bps must be positive")
        if not 0 <= self.disconnect_prob <= 1:
            raise ValueError("disconnect_prob must be in [0, 1]")
        if self.window_intervals < 1:
            raise ValueError("window_intervals must be >= 1")
        if self.items_per_query < 1:
            raise ValueError("items_per_query must be >= 1")
        if self.ir_channel_bps is not None and self.ir_channel_bps <= 0:
            raise ValueError("ir_channel_bps must be positive")
        if self.publish_per_interval < 0:
            raise ValueError("publish_per_interval must be >= 0")
        if self.publish_per_interval > 0:
            if self.publish_region is None:
                raise ValueError("publishing requires publish_region")
            lo, hi = self.publish_region
            if not (0 <= lo <= hi < self.db_size):
                raise ValueError("publish_region outside the database")
        for name in ("downlink_faults", "uplink_faults"):
            cfg = getattr(self, name)
            if cfg is not None and not isinstance(cfg, FaultConfig):
                raise ValueError(f"{name} must be a FaultConfig or None")
        if self.uplink_timeout is not None and self.uplink_timeout <= 0:
            raise ValueError("uplink_timeout must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base < 1.0:
            raise ValueError("backoff_base must be >= 1")
        if not 0.0 <= self.backoff_jitter < 1.0:
            raise ValueError("backoff_jitter must be in [0, 1)")
        if self.max_pending_tlbs is not None and self.max_pending_tlbs < 1:
            raise ValueError("max_pending_tlbs must be >= 1")
        if self.loss_adaptation is not None:
            if not isinstance(self.loss_adaptation, LossAdaptationConfig):
                raise ValueError(
                    "loss_adaptation must be a LossAdaptationConfig or None"
                )
            if self.loss_adaptation.w_max < self.window_intervals:
                raise ValueError("loss_adaptation.w_max must be >= window_intervals")
        if self.chaos is not None:
            # Lazy import: validation is the one runtime use of the type
            # here, and chaos sits above sim in the layering DAG.
            from ..chaos.schedule import ChaosConfig

            if not isinstance(self.chaos, ChaosConfig):
                raise ValueError("chaos must be a ChaosConfig or None")
            if self.chaos.crashes_server and self.uplink_timeout is None:
                # Uplink requests sent into a crashed server are shed;
                # without the timeout/retry lifecycle a client waiting on
                # a validity/rescue reply would hang until the horizon.
                raise ValueError(
                    "server-crash chaos requires uplink_timeout (the retry "
                    "layer) so shed uplink requests are retransmitted"
                )
            if self.chaos.crashes_cells and self.roaming is None:
                raise ValueError(
                    "cell-outage chaos requires the roaming knob group "
                    "(SystemParams.roaming): without a topology there is "
                    "no cell to crash or to evacuate clients to"
                )
        if self.roaming is not None:
            if not isinstance(self.roaming, RoamingConfig):
                raise ValueError("roaming must be a RoamingConfig or None")
            if self.roaming.n_cells > 1 and self.uplink_timeout is None:
                # A handoff strands any exchange in flight toward the old
                # cell; the retry layer is what re-issues it to the new
                # one, so multi-cell roaming cannot run without it.
                raise ValueError(
                    "multi-cell roaming requires uplink_timeout (the retry "
                    "layer) so exchanges stranded by a handoff are re-sent"
                )
            if self.roaming.n_cells > 1 and self.publish_per_interval > 0:
                raise ValueError(
                    "publishing mode is single-cell only (per-cell publish "
                    "schedules are not modelled); disable one of the knobs"
                )
        if self.aggregation is not None:
            if not isinstance(self.aggregation, AggregationConfig):
                raise ValueError("aggregation must be an AggregationConfig or None")
            if self.aggregation.k_exact > self.n_clients:
                raise ValueError("aggregation.k_exact exceeds the client population")
            if self.chaos is not None and (
                self.chaos.crashes_clients or self.chaos.skews_clocks
            ):
                # Client-targeted chaos addresses clients positionally and
                # at build time; a pooled member has no actor to crash or
                # skew.  Cell outages would likewise need to evacuate
                # pooled members.  Keep the combinations explicit errors
                # until the pool models them.
                raise ValueError(
                    "population aggregation cannot run with client-crash or "
                    "clock-skew chaos (pooled members have no actor to target)"
                )
            if self.chaos is not None and self.chaos.crashes_cells:
                raise ValueError(
                    "population aggregation cannot run with cell-outage chaos "
                    "(evacuation cannot reach pooled members)"
                )
        if self.strict_staleness and not self.track_staleness:
            raise ValueError("strict_staleness requires track_staleness")

    # -- derived quantities ---------------------------------------------------

    @property
    def effective_uplink_bps(self) -> float:
        """Uplink bandwidth, defaulting to the downlink's."""
        return self.uplink_bps if self.uplink_bps is not None else self.downlink_bps

    @property
    def retries_enabled(self) -> bool:
        """True when the client timeout/retry lifecycle is active."""
        return self.uplink_timeout is not None

    @property
    def ir_repeat(self) -> int:
        """Report repetition factor ``r`` (1 = broadcast once)."""
        return 1 if self.loss_adaptation is None else self.loss_adaptation.repeat

    @property
    def cache_capacity(self) -> int:
        """Client cache size in items (at least 1)."""
        return max(1, int(self.buffer_fraction * self.db_size))

    @property
    def window_seconds(self) -> float:
        """``w * L``: span of the default broadcast window."""
        return self.window_intervals * self.broadcast_interval

    @property
    def item_size_bits(self) -> float:
        """Wire size of one data item."""
        return self.item_size_bytes * 8.0

    @property
    def control_message_bits(self) -> float:
        """Wire size of a data request."""
        return self.control_message_bytes * 8.0

    @property
    def n_intervals(self) -> int:
        """Broadcast ticks within the simulation."""
        return int(self.simulation_time / self.broadcast_interval)

    def with_(self, **changes) -> "SystemParams":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)
