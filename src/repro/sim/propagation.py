"""Inter-server update propagation and cooperative salvage.

A multi-cell system has exactly one *origin* database (at the gateway,
cell 0); every other cell serves a **replica** kept current by a
:class:`CellSynchronizer`.  The replica invariant is a pair
``(origin O, horizon H)``: the replica knows the latest state of every
item for updates with timestamps in ``(O, H]``, and its version array is
correct as of ``H``.  Everything the fed server says — reports, validity
replies, served values — speaks as of ``H``, never wall-clock time, so a
lagging cell is simply a time-shifted single-cell server and every
single-cell safety argument carries over unchanged.

Three propagation modes (see :mod:`repro.topology`):

* ``eager_push`` — the :class:`OriginFeed` pushes every update (and a
  per-interval heartbeat, to advance horizons through quiet periods) to
  every subscriber; a lost delta shows up as a sequence gap and triggers
  a repair pull.
* ``lazy_pull`` — each cell pulls a delta from the origin once per
  broadcast interval, scheduled ``lead`` seconds before its own tick so
  the fresh horizon backs the next report.
* ``parent_cache`` — cells pull from their tree parent; only depth-1
  cells touch the origin, and per-depth leads make parents refresh
  before their children ask.

The feed's replay log is bounded (``sync_replay_intervals``): a cell
whose horizon fell further behind receives a version *snapshot* with a
raised history floor — its origin ``O`` rises, its server epoch bumps
(the history behind clients' ``Tlb`` is gone), and the cell now has a
finite amnesia floor that **cooperative salvage** exists to fill: a
:class:`CellCooperator` asks neighbor cells to vouch for the missing
``(need, O]`` history before a roamer's ``Tlb``/check is judged,
turning would-be full purges back into ordinary salvages.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from ..db.database import NEVER
from ..net import Message
from ..net.intercell import InterCellLink
from . import metrics as m

#: A pull response / the payload both feed classes produce:
#: ``(amnesia_floor, covers_from, upto, triples, versions)`` where
#: *triples* is ``(item, ts, version)`` most-recent-first covering
#: ``(covers_from, upto]`` and *versions* is the feed's full version
#: array as of *upto*.  ``covers_from > requester horizon`` (or
#: ``amnesia_floor >`` its origin) forces a snapshot adoption.
PullResponse = Tuple[float, float, float, tuple, Any]

#: An eager delta: ``(amnesia_floor, since, upto, triples, seq)``.
#: *seq* is a per-subscriber sequence number — the loss detector.
#: Timestamps cannot play that role: two updates committed in the same
#: instant produce two deltas with identical ``upto``, so a receiver
#: deduplicating on time alone would drop the second as already-seen.
#: A sequence gap (or the origin restarting, raising ``amnesia_floor``)
#: forces a repair pull.
PushDelta = Tuple[float, float, float, tuple, int]


class _Subscriber:
    """One eager-push subscription: a synchronizer behind one link."""

    __slots__ = ("sync", "link", "last_upto", "seq")

    def __init__(self, sync: "CellSynchronizer", link: InterCellLink):
        self.sync = sync
        self.link = link
        #: ``upto`` of the last delta sent (delivered or not): the next
        #: delta's ``since``.
        self.last_upto = 0.0
        #: Sequence number of the last delta sent (delivered or not):
        #: link losses surface as sequence gaps at the receiver.
        self.seq = 0


class OriginFeed:
    """The gateway side of propagation: answers pulls, pushes deltas.

    Owned by the multi-cell model; reads the origin database through the
    gateway :class:`~repro.sim.server.Server` so a gateway crash
    silences it (pulls go unanswered, heartbeats stop, horizons stall)
    and a gateway restart's raised ``db.origin_time`` propagates as the
    amnesia floor of every subsequent delta and response.
    """

    def __init__(self, env, server, params, roaming, metrics):
        self.env = env
        self.server = server
        self.params = params
        self.roaming = roaming
        self.metrics = metrics
        #: Seconds of update history the feed replays seamlessly; a
        #: requester further behind gets a snapshot with a raised floor.
        self.replay_window = roaming.sync_replay_intervals * params.broadcast_interval
        self._subscribers: List[_Subscriber] = []

    @property
    def db(self):
        return self.server.db

    # -- eager push ------------------------------------------------------------

    def subscribe(self, sync: "CellSynchronizer", link: InterCellLink):
        """Register an eager-push subscriber and start its heartbeat."""
        sub = _Subscriber(sync, link)
        self._subscribers.append(sub)
        self.env.process(
            self._heartbeat_loop(sub), name=f"feed-heartbeat-{sync.server.cell_id}"
        )

    def push_update(self, item: int, now: float):
        """Push one committed origin update to every subscriber."""
        version = int(self.db.version[item])
        for sub in self._subscribers:
            self._send_delta(sub, ((item, now, version),))

    def _send_delta(self, sub: _Subscriber, triples: tuple):
        sub.seq += 1
        delta: PushDelta = (
            self.db.origin_time, sub.last_upto, self.env.now, triples, sub.seq
        )
        # Advance unconditionally: a lost delta must show as a sequence
        # gap at the receiver, not vanish.
        sub.last_upto = self.env.now
        if not sub.link.send(sub.sync.on_push_delta, delta):
            self.metrics.counter(m.SYNC_LOST_MESSAGES).add()

    def _heartbeat_loop(self, sub: _Subscriber):
        """Advance the subscriber's horizon once per interval, even when
        no updates flow — timed so the fresh horizon lands before the
        subscriber's broadcast tick.  Suppressed while the origin is
        down: stalled horizons (and the skipped ticks they cause) are
        the honest signal of a gateway outage."""
        env = self.env
        interval = self.params.broadcast_interval
        lead = self.roaming.sync_margin + sub.link.latency
        tick = 0
        while True:
            tick += 1
            target = tick * interval - lead
            if target > env.now:
                yield env.sleep(target - env.now)
            if self.server.crashed:
                continue
            self._send_delta(sub, ())

    # -- pull service ----------------------------------------------------------

    def answer_pull(self, since: float) -> Optional[PullResponse]:
        """The delta (or snapshot) bringing a replica from *since* to now.

        Returns None while the gateway is down — silence, which the
        requester's timeout/retry machinery detects; a crashed process
        cannot answer.
        """
        if self.server.crashed:
            return None
        db = self.db
        now = self.env.now
        replay_floor = max(db.origin_time, now - self.replay_window)
        cutoff = max(since, replay_floor)
        triples = tuple(
            (item, ts, int(db.version[item])) for item, ts in db.updated_since(cutoff)
        )
        return (db.origin_time, cutoff, now, triples, db.version.copy())


class CellSynchronizer:
    """The fed-cell side: keeps one replica inside its ``(O, H]`` invariant.

    Installed as ``server.sync``; the server reads :attr:`horizon` for
    every timestamp it exposes.  In pull modes a per-interval pull loop
    (with bounded retry/backoff over the lossy link) drives the horizon;
    in eager mode deltas arrive via :meth:`on_push_delta` and only
    *repair* pulls are issued.  In ``parent_cache`` mode this object is
    also a feed: children pull from it through :meth:`answer_pull`.
    """

    def __init__(
        self,
        env,
        server,
        feed,
        link: InterCellLink,
        params,
        roaming,
        metrics,
        lead: float,
        pull: bool,
    ):
        self.env = env
        self.server = server
        #: Upstream knowledge source: the :class:`OriginFeed`, or the
        #: parent cell's synchronizer in ``parent_cache`` mode.
        self.feed = feed
        self.link = link
        self.params = params
        self.roaming = roaming
        self.metrics = metrics
        #: Seconds before each broadcast tick this cell aims to have a
        #: fresh horizon by (deeper cells lead more under parent_cache).
        self.lead = lead
        #: Knowledge horizon ``H``: the replica is complete through here.
        #: A fresh replica matches the untouched t=0 database; ``NEVER``
        #: marks a restarted replica that knows nothing until it resyncs.
        self.horizon = 0.0
        self._reply_event = None
        self._repairing = False
        #: Last eager-delta sequence number seen (loss detector).
        self._push_seq = 0
        server.sync = self
        if pull:
            env.process(self._pull_loop(), name=f"sync-cell-{server.cell_id}")

    # -- pull client -----------------------------------------------------------

    def _pull_loop(self):
        env = self.env
        interval = self.params.broadcast_interval
        tick = 0
        while True:
            tick += 1
            target = tick * interval - self.lead
            if target > env.now:
                yield env.sleep(target - env.now)
            yield from self._pull_round()

    def _pull_round(self):
        """One pull with bounded retries: ask, await reply or timeout."""
        env = self.env
        roaming = self.roaming
        timeout = 2.0 * self.link.latency + roaming.sync_margin
        self.metrics.counter(m.SYNC_PULLS).add()
        attempt = 0
        while True:
            reply = env.event()
            self._reply_event = reply
            if not self.link.send(self._ask_arrives, self.horizon):
                self.metrics.counter(m.SYNC_LOST_MESSAGES).add()
            yield env.any_of((reply, env.timeout(timeout)))
            if reply.triggered:
                self._apply_response(reply.value)
                return
            attempt += 1
            if attempt > roaming.max_sync_retries:
                # Abandon the round: the horizon stalls until the next
                # tick's pull, and stalled horizons skip broadcasts —
                # graceful degradation, never a fabricated report.
                self.metrics.counter(m.SYNC_FAILURES).add()
                return
            self.metrics.counter(m.SYNC_RETRIES).add()
            timeout *= roaming.sync_backoff

    def _ask_arrives(self, since: float, now: float):
        """Runs feed-side, one link latency after the ask was sent."""
        response = self.feed.answer_pull(since)
        if response is None:
            return  # feed down or unsynced: silence; the timeout detects it
        if not self.link.send(self._reply_arrives, response):
            self.metrics.counter(m.SYNC_LOST_MESSAGES).add()

    def _reply_arrives(self, response: PullResponse, now: float):
        reply = self._reply_event
        if reply is not None and not reply.triggered:
            reply.succeed(response)

    def _apply_response(self, response: PullResponse):
        amnesia_floor, covers_from, upto, triples, versions = response
        db = self.server.db
        policy = self.server.policy
        horizon = self.horizon
        if covers_from > horizon or amnesia_floor > db.origin_time:
            # The feed cannot (or may not) replay back to our horizon:
            # adopt its snapshot.  Our history floor rises to the
            # snapshot's coverage start, and the epoch bump tells every
            # client that the history behind its Tlb is gone here.
            floor = max(covers_from, amnesia_floor)
            pairs = [(item, ts) for item, ts, _version in triples]
            changed = db.replace_history(floor, pairs, versions)
            self.server.epoch += 1
            self.metrics.counter(m.SYNC_SNAPSHOTS).add()
            for item, old, new in changed:
                policy.on_item_update(item, old, new)
            self.horizon = upto
        elif upto > horizon:
            # Seamless delta.  Boundary self-heal first: an update
            # committed in the very instant the previous response was
            # built sits at ``ts == covers_from`` and is invisible to the
            # strict timestamp delta — but not to the version array the
            # feed ships with every response.  Any item whose origin
            # version is ahead of ours missed exactly such an update; we
            # know only ``ts <= covers_from``, so clamping its stamp UP
            # to ``covers_from`` conservatively over-invalidates (safe)
            # and keeps the recency order ascending under the triples.
            triple_items = {item for item, _ts, _version in triples}
            for idx in np.nonzero(versions > db.version)[0]:
                item = int(idx)
                if item in triple_items:
                    continue
                ts = max(covers_from, float(db.last_update[item]))
                old = db.apply_sync(item, ts, int(versions[item]))
                policy.on_item_update(item, old, int(versions[item]))
            # Then the triples, ascending in time, version-guarded so a
            # duplicate (or an update the sweep already grafted) no-ops.
            for item, ts, version in reversed(triples):
                if version > int(db.version[item]):
                    old = db.apply_sync(item, ts, version)
                    policy.on_item_update(item, old, version)
            self.horizon = upto
        # else: a stale duplicate reply (late retransmission) — covered.

    # -- eager receiver --------------------------------------------------------

    def on_push_delta(self, delta: PushDelta, now: float):
        amnesia_floor, since, upto, triples, seq = delta
        expected = self._push_seq + 1
        if seq < expected:
            return  # duplicate copy: already covered
        self._push_seq = seq
        db = self.server.db
        if (
            seq > expected
            or amnesia_floor > db.origin_time
            or self.horizon == NEVER
        ):
            # A delta was lost on the link (sequence gap), the origin
            # restarted (its floor rose past ours), or this replica is a
            # blank restart: this delta alone cannot bridge the gap, and
            # applying it would silently skip updates the oracle may
            # never see.  Repair with a full pull instead.
            self._schedule_repair()
            return
        policy = self.server.policy
        # Version-guarded: two origin updates committed in the same
        # instant arrive as two deltas with identical ``upto``, so
        # timestamps cannot deduplicate — the monotone version counter
        # can, and makes re-application a no-op.
        for item, ts, version in reversed(triples):
            if version > int(db.version[item]):
                old = db.apply_sync(item, ts, version)
                policy.on_item_update(item, old, version)
        if upto > self.horizon:
            self.horizon = upto
        self.metrics.counter(m.SYNC_PUSHES).add()

    def _schedule_repair(self):
        if self._repairing:
            return
        self._repairing = True
        self.env.process(
            self._repair(), name=f"sync-repair-{self.server.cell_id}"
        )

    def _repair(self):
        try:
            yield from self._pull_round()
        finally:
            self._repairing = False

    # -- restart + parent-cache feed service -----------------------------------

    def reset(self):
        """A restarted replica knows nothing until it resyncs.

        ``horizon = NEVER`` sheds uplink traffic (the server answers
        nothing it cannot back) and the immediate repair pull — with
        ``since = NEVER`` — is guaranteed a snapshot, re-establishing
        the invariant with a finite floor.
        """
        self.horizon = NEVER
        self._reply_event = None
        self._schedule_repair()

    def answer_pull(self, since: float) -> Optional[PullResponse]:
        """Feed a child cell (``parent_cache`` mode) from the replica.

        The child can never learn more than this cell knows: responses
        are capped at our horizon, and our own amnesia floor propagates
        so a snapshot here cascades to snapshots below.
        """
        server = self.server
        if server.crashed or self.horizon == NEVER:
            return None
        db = server.db
        cutoff = max(since, db.origin_time)
        triples = tuple(
            (item, ts, int(db.version[item])) for item, ts in db.updated_since(cutoff)
        )
        return (db.origin_time, cutoff, self.horizon, triples, db.version.copy())


class CoopPeer:
    """One neighbor a cooperator can ask: its server behind one link."""

    __slots__ = ("cell_id", "server", "link")

    def __init__(self, cell_id: int, server, link: InterCellLink):
        self.cell_id = cell_id
        self.server = server
        self.link = link


class CellCooperator:
    """Neighbor-assisted salvage for ``Tlb``/check uploads below the floor.

    Installed as ``server.coop``.  When a roamer's upload references
    history older than this cell's ``db.origin_time`` (the amnesia left
    by a snapshot resync), the server defers the upload here; the
    cooperator asks neighbor cells — round-robin, one timeout-bounded
    ask each — to vouch for the missing ``(need, origin]`` span.  A
    granted backfill grafts straight into the replica's history
    (:meth:`~repro.db.database.Database.backfill_history`), lowering the
    floor so the deferred upload is then judged as an ordinary salvage;
    refusals and total failures fall through to the policy's existing
    degradation path (full purge — safe, just costlier).
    """

    def __init__(self, env, server, roaming, metrics):
        self.env = env
        self.server = server
        self.roaming = roaming
        self.metrics = metrics
        self.peers: List[CoopPeer] = []
        self._cursor = 0
        server.coop = self

    def add_peer(self, cell_id: int, server, link: InterCellLink):
        self.peers.append(CoopPeer(cell_id, server, link))

    def backfill_then(
        self, need: float, resume: Callable[[Message], None], msg: Message
    ):
        """Backfill history down to *need*, then re-dispatch via *resume*."""
        self.env.process(
            self._backfill(need, resume, msg),
            name=f"coop-{self.server.cell_id}-client-{msg.src}",
        )

    def _backfill(self, need: float, resume: Callable[[Message], None], msg: Message):
        env = self.env
        server = self.server
        roaming = self.roaming
        self.metrics.counter(m.COOP_REQUESTS).add()
        # If the world changes while we wait (cell crash, epoch bump),
        # the deferred upload is void: the client's own retry/purge
        # machinery owns recovery, so the resume must be dropped.
        epoch0 = server.epoch
        up_to = server.db.origin_time
        n = len(self.peers)
        start = self._cursor
        if n:
            self._cursor = (start + 1) % n
        granted = False
        for i in range(n):
            peer = self.peers[(start + i) % n]
            reply = env.event()
            if not peer.link.send(self._ask_at_peer, (peer, need, up_to, reply)):
                self.metrics.counter(m.SYNC_LOST_MESSAGES).add()
            timeout = 2.0 * peer.link.latency + roaming.sync_margin
            yield env.any_of((reply, env.timeout(timeout)))
            if not reply.triggered:
                continue  # ask or answer lost, or the peer is down
            pairs = reply.value
            if pairs is None:
                self.metrics.counter(m.COOP_REFUSALS).add()
                continue
            if server.crashed or server.epoch != epoch0:
                return
            server.db.backfill_history(pairs, need)
            self.metrics.counter(m.COOP_BACKFILLS).add()
            granted = True
            break
        if not granted:
            self.metrics.counter(m.COOP_FAILURES).add()
        if not server.crashed and server.epoch == epoch0:
            resume(msg)

    def _ask_at_peer(self, payload, now: float):
        """Runs peer-side: answer iff the peer can vouch for the whole gap."""
        peer, need, up_to, reply = payload
        target = peer.server
        if target.crashed:
            return  # a dead neighbor answers nothing; the timeout detects it
        db = target.db
        if db.origin_time > need or target._knowledge_now(now) < up_to:
            # The peer's own floor is too high, or its horizon has not
            # reached the requester's origin: it cannot vouch for every
            # update in (need, up_to] — an honest refusal, never a
            # partial answer the requester would mistake for complete.
            answer = None
        else:
            # The peer stores only each item's *latest* update, so an
            # item last updated after up_to may ALSO have changed inside
            # (need, up_to] — dropping it would let the requester claim
            # a completeness it does not have.  Clamping its stamp to
            # up_to instead is conservatively safe: the requester (re-)
            # invalidates the item, which at worst costs one refetch.
            # Items the requester already tracks are skipped at graft
            # time, so the clamp never regresses a newer record.
            answer = tuple(
                (item, min(ts, up_to)) for item, ts in db.updated_since(need)
            )
        if not peer.link.send(self._answer_arrives, (reply, answer)):
            self.metrics.counter(m.SYNC_LOST_MESSAGES).add()

    def _answer_arrives(self, payload, now: float):
        reply, answer = payload
        if not reply.triggered:
            reply.succeed(answer)
