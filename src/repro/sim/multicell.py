"""Multi-cell assembly: per-cell servers, inter-server sync, roaming.

Extends :class:`~repro.sim.model.SimulationModel` through its three cell
hooks.  Cell 0 (the gateway) *is* the base model's server — origin
database, original channels, unchanged behaviour — so an ``n_cells = 1``
topology builds nothing extra and stays bit-identical to a run without
the roaming knob group (pinned by tests/sim/test_multicell.py).  Every
other cell gets its own channel set, a replica database behind a
:class:`~repro.sim.propagation.CellSynchronizer`, and (optionally) a
:class:`~repro.sim.propagation.CellCooperator` asking its graph
neighbors to backfill roamers' missing history.

Roaming is seeded per client (streams ``roam/client-<id>``): a client
waking from a doze may hand off to a random alive neighbor cell — and
*must* flee somewhere alive if its own cell is down.  Whole-cell outages
(:meth:`crash_cell` / :meth:`restart_cell`, driven by the chaos layer)
evacuate every resident to surviving neighbor cells, forcing the roaming
storms the acceptance campaign exercises.
"""

from __future__ import annotations

from typing import List, Optional

from ..db import Database
from ..db.database import NEVER
from ..net import Channel, PRIORITY_CHECK, PRIORITY_IR
from ..net.intercell import InterCellLink
from ..topology import EAGER_PUSH, PARENT_CACHE
from . import metrics as m
from .model import SimulationModel
from .propagation import CellCooperator, CellSynchronizer, OriginFeed
from .server import Server


class MultiCellModel(SimulationModel):
    """A wired graph of cells around the base model's gateway."""

    def __init__(self, params, workload, scheme):
        roaming = params.roaming
        self.roaming = roaming
        self.graph = roaming.topology.build()
        self._eager = roaming.propagation == EAGER_PUSH
        super().__init__(params, workload, scheme)
        if self.n_cells > 1:
            for client in self.clients:
                client._roam = self._roam_on_wake

    # -- construction (SimulationModel hooks) -----------------------------------

    def _build_cells(self):
        graph = self.graph
        n = graph.n_cells
        self.n_cells = n
        # Index = cell id; cell 0 reuses the base model's gateway parts.
        self.cell_servers: List[Server] = [self.server]
        self.cell_downlinks: List[Channel] = [self.downlink]
        self.cell_uplinks: List[Channel] = [self.uplink]
        self.cell_ir_channels: List[Optional[Channel]] = [self.ir_channel]
        self.synchronizers: List[Optional[CellSynchronizer]] = [None]
        self.cooperators: List[Optional[CellCooperator]] = [None]
        self.feed: Optional[OriginFeed] = None
        if n == 1:
            return
        params = self.params
        roaming = self.roaming
        env = self.env
        self.feed = OriginFeed(env, self.server, params, roaming, self.metrics)
        parent_mode = roaming.propagation == PARENT_CACHE
        # Per-depth scheduling slot: one full ask-answer exchange plus
        # slack, so a parent's refresh lands before its children ask.
        slot = roaming.sync_margin + 2.0 * roaming.topology.link_latency
        for cell in range(1, n):
            downlink = Channel(
                env,
                params.downlink_bps,
                name=f"downlink-{cell}",
                preempt_threshold=PRIORITY_IR,
                faults=self._fault_model(params.downlink_faults, f"downlink-{cell}"),
            )
            uplink = Channel(
                env,
                params.effective_uplink_bps,
                name=f"uplink-{cell}",
                preempt_threshold=PRIORITY_CHECK,
                faults=self._fault_model(params.uplink_faults, f"uplink-{cell}"),
            )
            ir_channel = (
                Channel(
                    env,
                    params.ir_channel_bps,
                    name=f"ir-channel-{cell}",
                    preempt_threshold=PRIORITY_IR,
                    faults=self._fault_model(
                        params.downlink_faults, f"ir-channel-{cell}"
                    ),
                )
                if params.ir_channel_bps is not None
                else None
            )
            replica = Database(params.db_size)
            policy = self.scheme.make_server_policy(params, replica)
            server = Server(
                env,
                params,
                replica,
                policy,
                downlink=downlink,
                uplink=uplink,
                metrics=self.metrics,
                ir_channel=ir_channel,
                cell_id=cell,
            )
            if parent_mode:
                feed_cell = graph.parent_of(cell)
                # Builders guarantee parents carry smaller ids, so the
                # parent's synchronizer already exists (or is the feed).
                feed = self.feed if feed_cell == 0 else self.synchronizers[feed_cell]
                latency = graph.link_latency(feed_cell, cell)
                lead = slot * (graph.max_depth - graph.depth(cell) + 1)
            else:
                feed = self.feed
                latency = graph.gateway_latency(cell)
                lead = roaming.sync_margin + 2.0 * latency
            sync = CellSynchronizer(
                env,
                server,
                feed,
                self._make_link(latency, f"intercell/{cell}"),
                params,
                roaming,
                self.metrics,
                lead=lead,
                pull=not self._eager,
            )
            if self._eager:
                self.feed.subscribe(sync, sync.link)
            self.cell_servers.append(server)
            self.cell_downlinks.append(downlink)
            self.cell_uplinks.append(uplink)
            self.cell_ir_channels.append(ir_channel)
            self.synchronizers.append(sync)
        if roaming.cooperative_salvage:
            # Second pass: every fed cell may ask each graph neighbor
            # (the gateway included — it holds the deepest history).
            for cell in range(1, n):
                coop = CellCooperator(
                    env, self.cell_servers[cell], roaming, self.metrics
                )
                for neighbor in graph.neighbors(cell):
                    coop.add_peer(
                        neighbor,
                        self.cell_servers[neighbor],
                        self._make_link(
                            graph.link_latency(cell, neighbor),
                            f"coop/{cell}-{neighbor}",
                        ),
                    )
                self.cooperators.append(coop)
        else:
            self.cooperators.extend([None] * (n - 1))

    def _make_link(self, latency: float, stream_name: str) -> InterCellLink:
        loss = self.roaming.link_loss_prob
        stream = self.streams.stream(stream_name) if loss > 0.0 else None
        return InterCellLink(self.env, latency, loss, stream)

    def _client_home(self, cid: int):
        cell = cid % self.n_cells
        return (cell,) + self._cell_channels(cell)

    def _cell_channels(self, cell_id: int):
        return (
            self.cell_downlinks[cell_id],
            self.cell_uplinks[cell_id],
            self.cell_ir_channels[cell_id],
        )

    def _finish_promote(self, client):
        # A promoted client roams on wake like everyone else.
        if self.n_cells > 1:
            client._roam = self._roam_on_wake

    # -- origin updates ---------------------------------------------------------

    def _on_item_update(self, item: int, now: float):
        super()._on_item_update(item, now)
        feed = self.feed
        if feed is not None and self._eager and not self.server.crashed:
            # A dead gateway pushes nothing: the update reaches the
            # durable origin database only, and the replicas' horizons
            # stall until the repair pull after the restart.
            feed.push_update(item, now)

    # -- roaming ----------------------------------------------------------------

    def _roam_stream(self, cid: int):
        return self.streams.stream(f"roam/client-{cid}")

    def _roam_on_wake(self, client, now: float):
        """Wake-time handoff decision (installed as ``client._roam``).

        Voluntary roams draw ``roam_prob`` per wake-up and pick a random
        alive neighbor; a client waking inside a crashed cell must flee
        regardless — to an alive neighbor, else to any alive cell (it
        physically moved out of the dead zone), else it stays and waits
        the outage out.
        """
        cell = client.cell_id
        stranded = self.cell_servers[cell].crashed
        if not stranded:
            prob = self.roaming.roam_prob
            if prob == 0.0 or not self._roam_stream(client.client_id).bernoulli(prob):
                return
        targets = [
            c
            for c in self.graph.neighbors(cell)
            if not self.cell_servers[c].crashed
        ]
        if not targets:
            if not stranded:
                return
            targets = [
                c
                for c in range(self.n_cells)
                if c != cell and not self.cell_servers[c].crashed
            ]
            if not targets:
                return
        stream = self._roam_stream(client.client_id)
        self._hand_off(client, targets[stream.randint(0, len(targets) - 1)],
                       m.ROAM_HANDOFFS)

    def _hand_off(self, client, cell: int, counter: str):
        client.hand_off(
            cell,
            self.cell_downlinks[cell],
            self.cell_uplinks[cell],
            self.cell_ir_channels[cell],
        )
        self.metrics.counter(counter).add()

    # -- whole-cell outages (driven by repro.chaos.ChaosInjector) ---------------

    def crash_cell(self, cell: int, now: float):
        """Take a whole cell down and evacuate its residents."""
        server = self.cell_servers[cell]
        if server.crashed:
            return
        server.crash(now)
        self.metrics.counter(m.CELL_CRASHES).add()
        self._evacuate(cell)

    def _evacuate(self, cell: int):
        """Scatter every resident (dozing ones included — the physical
        move happens regardless of radio state) across the surviving
        neighbor cells.  With no survivor adjacent, clients stay put and
        ride the outage out: no reports, shed uplink, pending queries
        parked — degraded, never lied to."""
        targets = [
            c
            for c in self.graph.neighbors(cell)
            if not self.cell_servers[c].crashed
        ]
        if not targets:
            return
        for client in self.clients:
            if client.cell_id != cell:
                continue
            stream = self._roam_stream(client.client_id)
            self._hand_off(client, targets[stream.randint(0, len(targets) - 1)],
                           m.ROAM_EVACUATIONS)

    def restart_cell(self, cell: int, now: float):
        """Bring a crashed cell back with a fresh incarnation.

        The gateway restarts exactly like the single-cell server (its
        database is the durable origin; only update-time knowledge is
        lost).  A fed cell's replica was *volatile*: the new incarnation
        starts from a blank database with horizon ``NEVER``, sheds every
        uplink arrival, and resyncs via an immediate snapshot pull.
        """
        server = self.cell_servers[cell]
        if not server.crashed:
            return
        if cell == 0:
            policy = self.scheme.make_server_policy(self.params, self.db)
            server.restart(now, policy)
        else:
            replica = Database(self.params.db_size)
            policy = self.scheme.make_server_policy(self.params, replica)
            server.restart(now, policy, replica_db=replica)
            self.synchronizers[cell].reset()
        self.metrics.counter(m.CELL_RESTARTS).add()

    # -- telemetry --------------------------------------------------------------

    def _collect_extra_telemetry(self, result):
        if self.n_cells == 1:
            # Emit nothing at N=1: the raw snapshot must stay key-for-key
            # identical to a run without the roaming knob group.
            return
        result.raw["cells.n"] = float(self.n_cells)
        now = self.env.now
        sent = lost = 0
        for cell in range(1, self.n_cells):
            sync = self.synchronizers[cell]
            sent += sync.link.sent
            lost += sync.link.lost
            horizon = sync.horizon
            result.raw[f"sync.cell{cell}.horizon_lag"] = (
                now - horizon if horizon != NEVER else -1.0
            )
            coop = self.cooperators[cell]
            if coop is not None:
                for peer in coop.peers:
                    sent += peer.link.sent
                    lost += peer.link.lost
        result.raw["intercell.messages"] = float(sent)
        result.raw["intercell.losses"] = float(lost)
