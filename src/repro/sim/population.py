"""Population aggregation: the long-dozing tail as a statistical pool.

The paper simulates every mobile host individually, which caps a cell at
a few hundred clients.  The pool below is the scaling seam: the K
"interesting" clients (active queries, salvage in flight, pending
validation) stay full-fidelity :class:`~repro.sim.client.MobileClient`
actors, while a client entering a long doze is *absorbed* — its O(cache)
state is collapsed to a stratum key

    ``(cell, epoch, Tlb-bucket, cache signature)``

where the cache signature counts cached items inside/outside the query
pattern's hot region.  The pool keeps only counts per stratum plus a
tiny per-member residue (ids, the scheme policy object, a wake time), so
a dozing client costs ~0 events (the PR 3 ``set_listening`` fast lane)
*and* ~0 memory.

When a member's seeded reconnect fires it is *promoted* back into a full
client: a cache consistent with its stratum is rebuilt
(:func:`rebuild_cache` — every entry is an honest ``Tlb``-time copy:
version = the item's version at ``Tlb``, timestamp = ``Tlb``), and the
ordinary reconnect machinery then feeds the correct uplink-checking and
salvage load into the server/scheme layer (``send_tlb`` /
``send_check_request`` at the next report).  With
``tlb_bucket_intervals = 1`` the bucketing is lossless (``Tlb`` values
are report times ``i * L``); wider buckets floor ``Tlb`` — strictly
conservative: a client claiming older knowledge can only over-invalidate
or over-salvage, never answer stale.

``SystemParams.aggregation = None`` (the default) disables the whole
layer and is bit-identical to the seed (pinned by the golden tests);
the aggregated == exact equivalence is established by
``tests/sim/test_population_differential.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..cache import CacheEntry, ClientCache
from ..des import Environment
from ..des.monitor import MetricSet
from ..des.rng import RandomStream, RandomStreams
from . import metrics as m
from .workload import AccessPattern

#: A stratum key: (cell, report epoch, Tlb bucket, n_hot, n_cold).
StratumKey = Tuple[int, int, int, int, int]


@dataclass(frozen=True, slots=True)
class AggregationConfig:
    """Knob group for the hybrid client model (None = exact simulation).

    Attributes
    ----------
    k_exact:
        Clients with id below this are never absorbed — they stay
        full-fidelity for the whole run (the paper's "interesting"
        clients).  0 lets every client be pooled when eligible.
    min_doze_intervals:
        Only dozes at least this many broadcast intervals long are
        absorbed; shorter naps stay exact (absorbing them would buy no
        memory and cost reconstruction accuracy).
    tlb_bucket_intervals:
        Width of a ``Tlb`` stratum bucket in broadcast intervals.  1 is
        lossless (reports broadcast at ``i * L``, so every ``Tlb`` is a
        bucket boundary); wider buckets floor a member's ``Tlb`` on
        promotion, which is conservative (over-invalidation only).
    start_in_pool:
        Fraction of the eligible (id >= ``k_exact``) population that
        *starts* parked in the pool instead of being constructed — the
        steady-state initial condition that lets a 100k-client cell
        build without 100k live actors.  0.0 (the default) constructs
        everyone, keeping t=0 identical to the exact model.
    """

    k_exact: int = 0
    min_doze_intervals: float = 2.0
    tlb_bucket_intervals: int = 1
    start_in_pool: float = 0.0

    def __post_init__(self) -> None:
        if self.k_exact < 0:
            raise ValueError("k_exact must be >= 0")
        if self.min_doze_intervals <= 0:
            raise ValueError("min_doze_intervals must be positive")
        if self.tlb_bucket_intervals < 1:
            raise ValueError(
                "tlb_bucket_intervals must be >= 1 (zero-width buckets "
                "would make every stratum empty)"
            )
        if not 0.0 <= self.start_in_pool <= 1.0:
            raise ValueError("start_in_pool must be in [0, 1]")


def cache_signature(cache: ClientCache, pattern: AccessPattern) -> Tuple[int, int]:
    """``(n_hot, n_cold)``: cached items inside/outside the hot region.

    With a flat pattern every cached item counts as cold — the signature
    degenerates to ``(0, len(cache))``, i.e. pure occupancy.
    """
    hot = pattern.hot
    if hot is None:
        return (0, len(cache))
    n_hot = 0
    for item in cache.item_ids():
        if hot.contains(item):
            n_hot += 1
    return (n_hot, len(cache) - n_hot)


def warm_signature(pattern: AccessPattern, capacity: int) -> Tuple[int, int]:
    """The signature ``warm_fill`` would produce, without drawing it.

    Mirrors :meth:`AccessPattern.warm_fill`: hot items fill first (up to
    the hot region's size), the rest is cold.  Used to park
    ``start_in_pool`` members without materialising their caches.
    """
    capacity = min(capacity, pattern.n_items)
    hot = pattern.hot
    if hot is None or pattern.hot_prob <= 0:
        return (0, capacity)
    n_hot = min(capacity, hot.size)
    return (n_hot, capacity - n_hot)


def rebuild_cache(
    stream: RandomStream,
    pattern: AccessPattern,
    capacity: int,
    n_hot: int,
    n_cold: int,
    tlb: float,
    update_log: Any = None,
) -> ClientCache:
    """Rebuild a promoted member's cache consistent with its stratum.

    Draws ``n_hot`` distinct items from the hot region and ``n_cold``
    from its complement (the whole database for a flat pattern).  Every
    entry is an honest ``Tlb``-time copy: version = number of updates at
    or before ``tlb`` (the durable version counter's value then), ts =
    ``tlb`` — exactly what a fetch completing at ``tlb`` would have
    installed, so every scheme's safety argument applies unchanged.  The
    rebuilt cache is certified as of ``tlb``, matching the absorbed
    client's certification floor.
    """
    hot = pattern.hot
    if n_hot < 0 or n_cold < 0:
        raise ValueError("stratum counts must be non-negative")
    if n_hot > 0 and hot is None:
        raise ValueError("stratum has hot items but the pattern has no hot region")
    if n_hot + n_cold > capacity:
        raise ValueError("stratum signature exceeds the cache capacity")
    items: List[int] = []
    if hot is not None and n_hot:
        items.extend(
            int(i)
            for i in stream.choice_without_replacement(hot.lo, hot.hi, n_hot)
        )
    if n_cold:
        if hot is None:
            items.extend(
                int(i)
                for i in stream.choice_without_replacement(
                    0, pattern.n_items - 1, n_cold
                )
            )
        else:
            # Uniform over the complement of the hot region, via the same
            # skip trick the query pattern uses.
            span = pattern.n_items - hot.size
            for raw in stream.choice_without_replacement(0, span - 1, n_cold):
                idx = int(raw)
                items.append(idx if idx < hot.lo else idx + hot.size)
    cache = ClientCache(capacity)
    for item in items:
        version = 0
        if update_log is not None:
            version = bisect.bisect_right(update_log.updates_of(item), tlb)
        cache.insert(CacheEntry(item=item, version=version, ts=tlb))
    cache.certify(tlb)
    return cache


class ResumeState:
    """Everything a promoted :class:`MobileClient` starts from."""

    __slots__ = (
        "cache",
        "tlb",
        "report_epoch",
        "report_cell",
        "clock_rate",
        "clock_skew",
    )

    def __init__(
        self,
        cache: ClientCache,
        tlb: float,
        report_epoch: int,
        report_cell: Optional[int],
        clock_rate: float,
        clock_skew: float,
    ) -> None:
        self.cache = cache
        self.tlb = tlb
        self.report_epoch = report_epoch
        self.report_cell = report_cell
        self.clock_rate = clock_rate
        self.clock_skew = clock_skew


class PooledMember:
    """One absorbed client's residue: ids, stratum, policy, wake time.

    The scheme policy object rides along because some client policies
    carry cross-episode state (SIG's saved combined signatures); it is
    tiny compared to the cache the pool sheds.  The member doubles as
    its own wake callback (appended to a :class:`Timeout`), so a parked
    client costs exactly one heap entry — the same event the exact
    model's doze sleep would schedule.
    """

    __slots__ = (
        "client_id",
        "cell_id",
        "report_cell",
        "report_epoch",
        "tlb_bucket",
        "n_hot",
        "n_cold",
        "policy",
        "wake_at",
        "clock_rate",
        "clock_skew",
        "_pool",
    )

    def __init__(
        self,
        pool: "PopulationPool",
        client_id: int,
        cell_id: int,
        report_cell: Optional[int],
        report_epoch: int,
        tlb_bucket: int,
        n_hot: int,
        n_cold: int,
        policy: Any,
        wake_at: float,
        clock_rate: float = 1.0,
        clock_skew: float = 0.0,
    ) -> None:
        self._pool = pool
        self.client_id = client_id
        self.cell_id = cell_id
        self.report_cell = report_cell
        self.report_epoch = report_epoch
        self.tlb_bucket = tlb_bucket
        self.n_hot = n_hot
        self.n_cold = n_cold
        self.policy = policy
        self.wake_at = wake_at
        self.clock_rate = clock_rate
        self.clock_skew = clock_skew

    @property
    def key(self) -> StratumKey:
        """The stratum this member is counted under."""
        return (
            self.cell_id,
            self.report_epoch,
            self.tlb_bucket,
            self.n_hot,
            self.n_cold,
        )

    def __call__(self, event: Any) -> None:
        """Timeout callback: the seeded reconnect fired — promote."""
        self._pool._wake(self)

    def __repr__(self) -> str:
        return (
            f"<PooledMember {self.client_id} cell={self.cell_id} "
            f"stratum={self.key} wake_at={self.wake_at}>"
        )


class PopulationPool:
    """Counts-per-stratum pool of absorbed (long-dozing) clients.

    The pool owns eligibility, stratum accounting and wake scheduling;
    the model owns client construction — it passes ``promote(member,
    now)`` (build + register the full-fidelity client) and
    ``release(client)`` (drop it from the live registry) at wiring time,
    which keeps this module free of the untyped actor surface.

    Conservation invariant (pinned by the property suite): live clients
    + ``residents`` == ``n_clients`` at every instant, and
    ``seeded + absorbed - promoted == residents``.
    """

    __slots__ = (
        "env",
        "params",
        "config",
        "streams",
        "metrics",
        "strata",
        "residents",
        "peak_residents",
        "seed_stream",
        "_promote",
        "_release",
        "_bucket_seconds",
        "_min_doze_seconds",
        "_m_absorbed",
        "_m_promoted",
        "_m_seeded",
    )

    def __init__(
        self,
        env: Environment,
        params: Any,
        streams: RandomStreams,
        metrics: MetricSet,
        promote: Callable[["PooledMember", float], Any],
        release: Callable[[Any], None],
    ) -> None:
        self.env = env
        self.params = params
        self.config: AggregationConfig = params.aggregation
        self.streams = streams
        self.metrics = metrics
        #: Member counts per stratum key (never negative; empty strata
        #: are removed eagerly).
        self.strata: Dict[StratumKey, int] = {}
        self.residents = 0
        self.peak_residents = 0
        #: One pool-level stream for build-time seeding draws — parking
        #: 100k members must not materialise 100k per-client generators.
        self.seed_stream = streams.stream("population/seed")
        self._promote = promote
        self._release = release
        interval = params.broadcast_interval
        self._bucket_seconds = self.config.tlb_bucket_intervals * interval
        self._min_doze_seconds = self.config.min_doze_intervals * interval
        self._m_absorbed = metrics.bind_counter(m.POOL_ABSORBED)
        self._m_promoted = metrics.bind_counter(m.POOL_PROMOTED)
        self._m_seeded = metrics.bind_counter(m.POOL_SEEDED)

    # -- stratum arithmetic -------------------------------------------------

    def tlb_bucket(self, tlb: float) -> int:
        """Quantize a ``Tlb`` into its stratum bucket (floor)."""
        if tlb <= 0.0:
            return 0
        return int(tlb // self._bucket_seconds)

    def bucket_time(self, bucket: int) -> float:
        """The (conservative) ``Tlb`` a bucket reconstructs to."""
        return bucket * self._bucket_seconds

    # -- absorb / seed / promote --------------------------------------------

    def try_absorb(self, client: Any, doze_seconds: float) -> bool:
        """Absorb *client* for a doze of *doze_seconds*, if eligible.

        Eligible means: not one of the K exact clients, a doze long
        enough to be worth pooling, and no protocol state the stratum
        cannot represent (suspect cache entries, a pending validation,
        or an in-flight fetch keep the client exact — those are the
        "interesting" clients by definition).  On True the caller (the
        client actor) must detach its radio and end its query loop.
        """
        if client.client_id < self.config.k_exact:
            return False
        if doze_seconds < self._min_doze_seconds:
            return False
        cache = client.cache
        if cache.unreconciled or client._validation_pending or client._data_waits:
            return False
        n_hot, n_cold = cache_signature(cache, client.query_pattern)
        now = self.env.now
        member = PooledMember(
            self,
            client_id=client.client_id,
            cell_id=client.cell_id,
            report_cell=client._report_cell,
            report_epoch=client._report_epoch,
            tlb_bucket=self.tlb_bucket(client.tlb),
            n_hot=n_hot,
            n_cold=n_cold,
            policy=client.policy,
            wake_at=now + doze_seconds,
            clock_rate=client._clock_rate,
            clock_skew=client._clock_skew,
        )
        self._park(member, doze_seconds)
        self._m_absorbed.add()
        self._release(client)
        return True

    def seed_parked(self, client_id: int, cell_id: int, n_hot: int, n_cold: int) -> None:
        """Park a never-constructed client at build time (steady state).

        The member starts coherent with the t=0 database (``Tlb`` bucket
        0, epoch 0) and mid-doze: its first wake is drawn from the
        pool's own seed stream, so seeding never touches (or creates)
        the per-client streams.
        """
        doze = self.seed_stream.exponential(self.params.disconnect_time_mean)
        member = PooledMember(
            self,
            client_id=client_id,
            cell_id=cell_id,
            report_cell=cell_id,
            report_epoch=0,
            tlb_bucket=0,
            n_hot=n_hot,
            n_cold=n_cold,
            policy=None,
            wake_at=self.env.now + doze,
        )
        self._park(member, doze)
        self._m_seeded.add()

    def _park(self, member: PooledMember, delay: float) -> None:
        key = member.key
        self.strata[key] = self.strata.get(key, 0) + 1
        self.residents += 1
        if self.residents > self.peak_residents:
            self.peak_residents = self.residents
        # One NORMAL-priority heap entry per member — the same (time,
        # priority) the exact model's doze sleep would occupy, so wakes
        # interleave with reports and queries exactly as before.
        timeout = self.env.timeout(delay)
        callbacks = timeout.callbacks
        assert callbacks is not None  # fresh Timeout: not yet processed
        callbacks.append(member)

    def _wake(self, member: PooledMember) -> None:
        key = member.key
        count = self.strata[key] - 1
        if count:
            self.strata[key] = count
        else:
            del self.strata[key]
        self.residents -= 1
        self._m_promoted.add()
        self._promote(member, self.env.now)
