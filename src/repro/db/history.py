"""Append-only update log used as correctness ground truth.

The simulation's staleness checks (`no stale hits`, the library's central
invariant) need to ask "was this item updated in a given half-open time
interval?".  The :class:`UpdateLog` answers that from an append-only
per-item list of update times, independent of the report structures under
test, so a bug in a report cannot hide itself.
"""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List


class UpdateLog:
    """Per-item sorted lists of update times (times arrive monotonically)."""

    def __init__(self):
        self._times: Dict[int, List[float]] = defaultdict(list)
        self.total = 0

    def record(self, item: int, now: float):
        """Append an update of *item* at *now* (must be non-decreasing)."""
        times = self._times[item]
        if times and now < times[-1]:
            raise ValueError("update log times must be non-decreasing")
        times.append(now)
        self.total += 1

    def updated_in(self, item: int, after: float, up_to: float) -> bool:
        """True if *item* was updated in the half-open interval ``(after, up_to]``."""
        times = self._times.get(item)
        if not times:
            return False
        idx = bisect.bisect_right(times, after)
        return idx < len(times) and times[idx] <= up_to

    def updates_of(self, item: int) -> List[float]:
        """All update times of *item* (possibly empty), oldest first."""
        return list(self._times.get(item, ()))

    def last_update_before(self, item: int, up_to: float) -> float:
        """Latest update time of *item* that is <= *up_to* (-inf if none)."""
        times = self._times.get(item)
        if not times:
            return float("-inf")
        idx = bisect.bisect_right(times, up_to)
        return times[idx - 1] if idx else float("-inf")
