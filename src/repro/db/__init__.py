"""Server database substrate: item store, recency index, update workload."""

from .database import Database, NEVER
from .history import UpdateLog
from .updates import UpdateGenerator

__all__ = ["Database", "NEVER", "UpdateGenerator", "UpdateLog"]
