"""The server's update workload process.

Section 4 of the paper: "Updates are separated by an exponentially
distributed update interarrival time" with a mean number of items touched
per update transaction (Table 1: interarrival 100 s, 5 items/transaction).
Item choice follows the update pattern of Table 2 (uniform for both
workloads studied; hot/cold supported for ablations).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..des import Environment, RandomStream
from .database import Database
from .history import UpdateLog


class UpdateGenerator:
    """Drives update transactions against a :class:`Database`.

    Parameters
    ----------
    env, db:
        Simulation environment and the database to update.
    pattern:
        An object with ``pick(stream) -> item`` (see
        :class:`repro.sim.workload.AccessPattern`).
    interarrival_mean:
        Mean seconds between update transactions.
    items_per_update_mean:
        Mean items per transaction (>= 1; at least one item is always
        updated).
    stream:
        Random stream for timing and item choice.
    log:
        Optional :class:`UpdateLog` ground-truth recorder.
    on_update:
        Optional callback ``(item, now)`` fired per item update (used by
        signature-based schemes to refresh item signatures).
    """

    def __init__(
        self,
        env: Environment,
        db: Database,
        pattern,
        interarrival_mean: float,
        items_per_update_mean: float,
        stream: RandomStream,
        log: Optional[UpdateLog] = None,
        on_update: Optional[Callable[[int, float], None]] = None,
    ):
        if interarrival_mean <= 0:
            raise ValueError("interarrival mean must be positive")
        self.env = env
        self.db = db
        self.pattern = pattern
        self.interarrival_mean = interarrival_mean
        self.items_per_update_mean = items_per_update_mean
        self.stream = stream
        self.log = log
        self.on_update = on_update
        self.transactions = 0
        self.items_updated = 0
        self.process = env.process(self._run(), name="update-generator")

    def _run(self):
        env = self.env
        while True:
            yield env.sleep(self.stream.exponential(self.interarrival_mean))
            count = self.stream.poisson_at_least_one(self.items_per_update_mean)
            now = env.now
            seen = set()
            for _ in range(count):
                item = self.pattern.pick(self.stream)
                if item in seen:  # one timestamp bump per item per txn
                    continue
                seen.add(item)
                self.db.apply_update(item, now)
                if self.log is not None:
                    self.log.record(item, now)
                if self.on_update is not None:
                    self.on_update(item, now)
            self.transactions += 1
            self.items_updated += len(seen)
