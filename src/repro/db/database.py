"""The server's database of N named items.

The paper's model (Section 2): the database is a collection of ``N`` named
data items, updated only by the server; a data item is the unit of update
and query.  For invalidation reports the server needs, at any time:

* the latest update timestamp of each item (``last_update``);
* the items updated within a window ``(T - wL, T]`` (for TS reports);
* the globally most-recently-updated distinct items in recency order
  (for Bit-Sequences reports and for AAW's enlarged windows).

The recency order is maintained incrementally with an ordered dict
(move-to-end on update), so report construction costs O(result size), not
O(N) — essential when BS reports are built every 20 simulated seconds.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Tuple

import numpy as np

#: Timestamp used for "never updated".
NEVER = float("-inf")


class Database:
    """Server-side item store with an incremental update-recency index."""

    def __init__(self, n_items: int, origin_time: float = NEVER):
        if n_items <= 0:
            raise ValueError("database needs at least one item")
        self.n_items = int(n_items)
        #: Latest update time per item (NEVER when untouched).
        self.last_update = np.full(self.n_items, NEVER, dtype=np.float64)
        #: Monotone per-item version counter; version 0 is the initial value.
        self.version = np.zeros(self.n_items, dtype=np.int64)
        #: History floor: the database vouches for every update since this
        #: instant.  A newborn database knows all history (NEVER); a
        #: crash-restart raises the floor to the restart time
        #: (:meth:`forget_history`), bounding what reports may claim.
        self.origin_time = origin_time
        self.total_updates = 0
        # item -> last update time; most recently updated item is LAST.
        self._recency: "OrderedDict[int, float]" = OrderedDict()
        # Single-slot memos for the per-broadcast-tick recency scans
        # (keyed by total_updates, so any update invalidates them).  At
        # the paper's update rates most ticks repeat the previous tick's
        # query verbatim — see docs/PERFORMANCE.md.
        self._updated_since_key: Tuple[int, float] | None = None
        self._updated_since_result: List[Tuple[int, float]] = []
        self._recency_order_key: Tuple[int, int | None] | None = None
        self._recency_order_result: List[Tuple[int, float]] = []

    def __repr__(self):
        return f"<Database n={self.n_items} updates={self.total_updates}>"

    def _check_item(self, item: int):
        if not 0 <= item < self.n_items:
            raise IndexError(f"item {item} outside [0, {self.n_items})")

    def apply_update(self, item: int, now: float):
        """Commit an update of *item* at time *now*."""
        self._check_item(item)
        if now < self.last_update[item]:
            raise ValueError("update time precedes the item's latest update")
        self.last_update[item] = now
        self.version[item] += 1
        self.total_updates += 1
        self._recency[item] = now
        self._recency.move_to_end(item)

    def forget_history(self, now: float):
        """Discard all update-*time* knowledge, as a server crash would.

        Item values and version counters are durable (they model the
        persisted database); what a restart loses is the in-memory record
        of *when* items changed.  ``origin_time`` becomes *now*: the new
        incarnation can only vouch for updates it witnesses from here on,
        so every report builder must treat *now* as its history floor.
        """
        self.origin_time = now
        self.last_update.fill(NEVER)
        self._recency.clear()
        self._clear_memos()

    def _clear_memos(self):
        self._updated_since_key = None
        self._updated_since_result = []
        self._recency_order_key = None
        self._recency_order_result = []

    # -- replica synchronisation (multi-cell; see repro.sim.propagation) -------

    def apply_sync(self, item: int, ts: float, version: int) -> int:
        """Apply one replicated update with an *absolute* version counter.

        Unlike :meth:`apply_update` (which increments), a replica adopts
        the origin's version number verbatim — combined signatures are a
        pure function of the version array, so every cell must hold the
        same counters for the same knowledge horizon.  Returns the old
        version so the caller can forward the change to its policy.
        """
        self._check_item(item)
        if ts < self.last_update[item]:
            raise ValueError("sync time precedes the item's latest update")
        old = int(self.version[item])
        self.last_update[item] = ts
        self.version[item] = version
        self.total_updates += 1
        self._recency[item] = ts
        self._recency.move_to_end(item)
        return old

    def replace_history(self, floor: float, pairs, versions) -> List[Tuple[int, int, int]]:
        """Adopt a feed snapshot: absolute versions, times known since *floor*.

        *pairs* is ``(item, ts)`` most-recent-first (the
        :meth:`updated_since` order) covering ``(floor, horizon]``;
        *versions* is the feed's full version array as of that horizon.
        Everything older than *floor* is forgotten — the replica's
        history floor rises exactly like a crash restart's does.
        Returns the ``(item, old_version, new_version)`` changes so the
        caller can forward them to its scheme policy.
        """
        changed = [
            (int(item), int(self.version[item]), int(versions[item]))
            for item in np.nonzero(self.version != versions)[0]
        ]
        self.version[:] = versions
        self.origin_time = floor
        self.last_update.fill(NEVER)
        self._recency.clear()
        # Reversed: ascending time, reproducing the feed's recency order.
        for item, ts in reversed(pairs):
            self.last_update[item] = ts
            self._recency[item] = ts
        self.total_updates += 1
        self._clear_memos()
        return changed

    def backfill_history(self, pairs, floor: float):
        """Graft older update history below the current floor.

        Cooperative salvage: a peer vouches for *every* update in
        ``(floor, origin_time]`` with *pairs* (``(item, ts)``
        most-recent-first).  Items we already track keep their newer
        record; the rest slot in at the cold end of the recency index in
        their original order.  ``origin_time`` drops to *floor*, so
        window/BS report builders may now reach that far back.  Versions
        need no patching — the replica's array is already correct as of
        its horizon for every item, including backfilled ones.
        """
        recency = self._recency
        for item, ts in pairs:
            if item in recency:
                continue
            self._check_item(item)
            recency[item] = ts
            recency.move_to_end(item, last=False)
            if self.last_update[item] == NEVER:
                self.last_update[item] = ts
        if floor < self.origin_time:
            self.origin_time = floor
        self._clear_memos()

    def read(self, item: int) -> Tuple[int, float]:
        """Return ``(version, last_update_time)`` of *item*."""
        self._check_item(item)
        return int(self.version[item]), float(self.last_update[item])

    @property
    def distinct_updated(self) -> int:
        """How many distinct items have ever been updated."""
        return len(self._recency)

    def updated_since(self, cutoff: float) -> List[Tuple[int, float]]:
        """Items whose latest update is strictly after *cutoff*.

        Returned most-recent-first as ``(item, timestamp)`` pairs; cost is
        O(result size), O(1) when repeating the previous query against an
        unchanged database.  Callers must treat the list as immutable.
        """
        key = (self.total_updates, cutoff)
        if key == self._updated_since_key:
            return self._updated_since_result
        out: List[Tuple[int, float]] = []
        for item, ts in reversed(self._recency.items()):
            if ts <= cutoff:
                break
            out.append((item, ts))
        self._updated_since_key = key
        self._updated_since_result = out
        return out

    def recency_order(self, limit: int | None = None) -> List[Tuple[int, float]]:
        """Up to *limit* most-recently-updated items, most recent first.

        Memoized like :meth:`updated_since`; treat the list as immutable.
        """
        key = (self.total_updates, limit)
        if key == self._recency_order_key:
            return self._recency_order_result
        out: List[Tuple[int, float]] = []
        for item, ts in reversed(self._recency.items()):
            if limit is not None and len(out) >= limit:
                break
            out.append((item, ts))
        self._recency_order_key = key
        self._recency_order_result = out
        return out

    def iter_recency_desc(self) -> Iterator[Tuple[int, float]]:
        """Iterate all updated items most recent first."""
        return iter(reversed(self._recency.items()))

    def latest_update_time(self) -> float:
        """Time of the most recent update anywhere (NEVER if none)."""
        if not self._recency:
            return NEVER
        item = next(reversed(self._recency))
        return self._recency[item]
