#!/usr/bin/env python3
"""Asymmetric-channel demo: where the adaptive schemes win outright.

A miniature of Figures 15/16.  Real wireless uplinks are much narrower
than downlinks, and transmitting costs the mobile battery ~distance^4
power; the paper's headline argument is that invalidation should spend
as few uplink bits as possible.  This example sweeps the uplink
bandwidth and locates the crossover below which AAW's one-timestamp
uploads beat checking's full-cache uploads on *throughput*, not just on
energy.

Usage::

    python examples/asymmetric_uplink.py
"""

from repro import SystemParams, run_simulation
from repro.analysis import crossover_x

UPLINKS = [100.0, 200.0, 400.0, 700.0, 1000.0]


def main():
    print("Asymmetric channels: throughput vs uplink bandwidth (UNIFORM)")
    print(f"  downlink fixed at 10000 bps; item {8192} B; "
          f"data request {512} B")
    series = {"aaw": [], "checking": []}
    print(f"  {'uplink bps':>11s} {'aaw':>8s} {'checking':>9s} {'winner':>9s}")
    for bw in UPLINKS:
        params = SystemParams(
            simulation_time=8_000.0,
            n_clients=60,
            db_size=5_000,
            disconnect_prob=0.1,
            disconnect_time_mean=4_000.0,
            uplink_bps=bw,
            seed=5,
        )
        row = {}
        for scheme in series:
            row[scheme] = run_simulation(params, "uniform", scheme).queries_answered
            series[scheme].append(row[scheme])
        winner = max(row, key=row.get)
        print(f"  {bw:>11.0f} {row['aaw']:>8.0f} {row['checking']:>9.0f} "
              f"{winner:>9s}")

    x = crossover_x(UPLINKS, series["aaw"], series["checking"])
    if x is None:
        print("\nAAW leads across the whole sweep.")
    else:
        print(f"\nAAW stops clearly leading around {x:.0f} bps — below that, "
              "checking's bulky uploads throttle the shared uplink.")


if __name__ == "__main__":
    main()
