#!/usr/bin/env python3
"""Replicated comparison with confidence intervals.

The paper reports single simulation runs (standard for 1997).  This
example re-examines its central uplink-cost claim with modern rigor:
independent replications, t-based confidence intervals, and a Welch
test for the AAW-vs-checking difference.

Usage::

    python examples/replication_study.py
"""

from repro import SystemParams, run_replications
from repro.analysis import significantly_better, summarize_metric, welch_p_value

SEEDS = list(range(1, 9))


def main():
    params = SystemParams(
        simulation_time=6_000.0,
        n_clients=40,
        db_size=10_000,
        disconnect_prob=0.2,
        disconnect_time_mean=600.0,
    )
    print(f"Replicating AAW vs checking over {len(SEEDS)} seeds "
          "(UNIFORM, disc 600 s @ p=0.2)\n")

    by_scheme = {
        scheme: run_replications(params, "uniform", scheme, seeds=SEEDS)
        for scheme in ("aaw", "checking")
    }

    for metric, label in [
        ("queries_answered", "throughput (queries answered)"),
        ("uplink_cost_per_query", "uplink validation bits per query"),
    ]:
        print(f"  {label}:")
        for scheme, results in by_scheme.items():
            print(f"    {scheme:>9s}: {summarize_metric(results, metric)}")
        print()

    aaw_uplink = [r.uplink_cost_per_query for r in by_scheme["aaw"]]
    chk_uplink = [r.uplink_cost_per_query for r in by_scheme["checking"]]
    p = welch_p_value(aaw_uplink, chk_uplink)
    print(f"  Welch test, uplink cost AAW vs checking: p = {p:.2e}")
    assert significantly_better(chk_uplink, aaw_uplink)
    print("  -> checking's uplink cost exceeds AAW's with overwhelming "
          "significance,\n     replicating the paper's central claim "
          "beyond single-run noise.")


if __name__ == "__main__":
    main()
