#!/usr/bin/env python3
"""Disconnection-regime study: sleepers vs workaholics.

A miniature of Figures 7-10: sweep the disconnection probability and the
mean disconnection duration, comparing the paper's AAW against the
checking baseline.  The question the paper poses: how much uplink does
salvaging a sleeper's cache cost, and what does it do to throughput?

Usage::

    python examples/disconnection_study.py
"""

from repro import SystemParams, run_simulation


def base_params(**kw):
    defaults = dict(
        simulation_time=8_000.0,
        n_clients=50,
        db_size=10_000,
        seed=3,
    )
    defaults.update(kw)
    return SystemParams(**defaults)


def sweep(param_name, values, fixed):
    print(f"\n  sweep of {param_name} "
          f"({', '.join(f'{k}={v}' for k, v in fixed.items())})")
    print(f"  {param_name:>22s} {'aaw answered':>13s} {'chk answered':>13s} "
          f"{'aaw b/q':>9s} {'chk b/q':>9s}")
    for x in values:
        params = base_params(**fixed, **{param_name: x})
        aaw = run_simulation(params, "uniform", "aaw")
        chk = run_simulation(params, "uniform", "checking")
        print(
            f"  {x:>22g} {aaw.queries_answered:>13.0f} "
            f"{chk.queries_answered:>13.0f} "
            f"{aaw.uplink_cost_per_query:>9.2f} "
            f"{chk.uplink_cost_per_query:>9.1f}"
        )


def main():
    print("Disconnection study: AAW vs TS-with-checking (UNIFORM workload)")
    sweep(
        "disconnect_prob",
        [0.1, 0.3, 0.5, 0.7],
        fixed={"disconnect_time_mean": 400.0},
    )
    sweep(
        "disconnect_time_mean",
        [200.0, 800.0, 2000.0, 4000.0],
        fixed={"disconnect_prob": 0.1},
    )
    print(
        "\nBoth schemes keep throughput roughly level; the difference is "
        "the uplink bill:\nchecking uploads its whole cache per "
        "reconnection, AAW uploads one timestamp."
    )


if __name__ == "__main__":
    main()
