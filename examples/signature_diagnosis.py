#!/usr/bin/env python3
"""Signature (SIG) reports: probabilistic diagnosis up close.

Uses the report layer directly (no event simulation): builds combined
signatures over a small database, applies updates, and shows how a
woken-up client diagnoses its cache by differencing saved vs fresh
signatures — including the false-positive collateral that makes SIG
trade re-fetch traffic for uplink silence.

Usage::

    python examples/signature_diagnosis.py
"""

from repro.db import Database
from repro.reports import SignatureScheme, build_signature_report


def main():
    n_items = 256
    scheme = SignatureScheme(
        n_items,
        n_subsets=64,
        signature_bits=32,
        membership=0.08,        # each item in ~5 of 64 subsets
        diagnose_threshold=0.5,
        seed=11,
    )
    db = Database(n_items)

    saved = build_signature_report(db, timestamp=0.0, scheme=scheme).combined
    print(f"Client sleeps holding signatures of a clean {n_items}-item db "
          f"({scheme.n_subsets} combined sigs x {scheme.signature_bits} bits).")

    updated = [3, 57, 198]
    for i, item in enumerate(updated):
        db.apply_update(item, 10.0 * (i + 1))
    print(f"While it sleeps, the server updates items {updated}.")

    fresh = build_signature_report(db, timestamp=100.0, scheme=scheme)
    changed = fresh.diff_subsets(saved)
    print(f"\nOn waking: {len(changed)} of {scheme.n_subsets} combined "
          f"signatures differ.")

    cached = list(range(0, 120))  # the client caches items 0..119
    inv = fresh.diagnose(cached, saved)
    true_positives = sorted(set(updated) & inv.items)
    false_positives = sorted(inv.items - set(updated))
    print(f"Diagnosis over the client's {len(cached)} cached items:")
    print(f"  dropped (truly updated) : {true_positives}")
    print(f"  dropped (collateral)    : {false_positives}")
    missed = [i for i in updated if i in cached and i not in inv.items]
    print(f"  missed stale items      : {missed}  (must be empty)")
    assert not missed

    rate = len(false_positives) / max(1, len(cached))
    print(
        f"\nEvery stale cached item was caught; {rate:.0%} of valid entries "
        "were dropped as collateral — the price of a fixed-size report and "
        "zero uplink."
    )


if __name__ == "__main__":
    main()
