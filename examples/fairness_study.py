#!/usr/bin/env python3
"""Per-client fairness: what aggregate throughput hides.

The paper's throughput metric sums over all clients; a scheme could look
fine on aggregate while starving its sleepers.  This example enables the
per-query log, compares how the checking and adaptive schemes serve a
cell where sleepers abound, and reports Jain's fairness index plus the
tail latency the histogram monitor records.

Usage::

    python examples/fairness_study.py
"""

from repro import HOTCOLD, SystemParams
from repro.sim import SimulationModel

SCHEMES = ("aaw", "checking", "bs", "ts")


def main():
    params = SystemParams(
        simulation_time=8_000.0,
        n_clients=40,
        db_size=5_000,
        disconnect_prob=0.3,
        disconnect_time_mean=800.0,
        update_interarrival_mean=50.0,
        collect_query_log=True,
        seed=17,
    )
    print("Fairness among clients (HOTCOLD; 30 % of gaps are 800 s sleeps)\n")
    print(f"  {'scheme':>9s} {'answered':>9s} {'jain':>6s} "
          f"{'lat p50':>8s} {'lat p95':>8s} {'worst-client hit%':>18s}")
    for scheme in SCHEMES:
        model = SimulationModel(params, HOTCOLD, scheme)
        result = model.run()
        per_client = model.query_log.per_client().values()
        worst_hit = min((s.hit_ratio for s in per_client), default=0.0)
        print(
            f"  {scheme:>9s} {result.queries_answered:>9.0f} "
            f"{model.query_log.fairness():>6.3f} "
            f"{result.raw['query.latency.p50']:>8.1f} "
            f"{result.raw['query.latency.p95']:>8.1f} "
            f"{100 * worst_hit:>17.1f}%"
        )
    print(
        "\nTS's full cache drops after every sleep hit the sleepers "
        "hardest (lowest\nworst-client hit ratio); the salvage schemes "
        "keep per-client service even."
    )


if __name__ == "__main__":
    main()
