#!/usr/bin/env python3
"""Battery-energy study: the paper's power argument in joules.

The paper motivates its schemes with power efficiency — a transmitted
bit costs a mobile client far more than a received one (transmission
power grows as distance^4).  This example converts each scheme's packet
behaviour into energy per query under a 100:1 tx/rx per-bit cost and
shows where each scheme's battery actually goes.

Usage::

    python examples/energy_study.py
"""

from repro import SystemParams, run_schemes
from repro.sim.energy import ENERGY_RX, ENERGY_TX, EnergyModel, energy_per_query_nj

SCHEMES = ("aaw", "afw", "checking", "bs")


def main():
    params = SystemParams(
        simulation_time=8_000.0,
        n_clients=50,
        db_size=20_000,           # big database: BS reports are heavy
        disconnect_prob=0.2,
        disconnect_time_mean=600.0,
        energy=EnergyModel(tx_nj_per_bit=1000.0, rx_nj_per_bit=10.0),
        seed=13,
    )
    print("Client radio energy per query (tx = 100x rx per bit)")
    print(f"  db={params.db_size} items; disc 600 s @ p=0.2; UNIFORM\n")
    results = run_schemes(params, "uniform", SCHEMES)
    print(f"  {'scheme':>9s} {'tx mJ/q':>9s} {'rx mJ/q':>9s} {'total':>9s}  where it goes")
    stories = {
        "aaw": "tiny Tlb uploads; small reports",
        "afw": "tiny Tlb uploads; BS answers cost listening",
        "checking": "full-cache uploads burn transmit power",
        "bs": "every client listens to ~2N-bit reports",
    }
    for name in SCHEMES:
        r = results[name]
        answered = max(1.0, r.queries_answered)
        tx = r.counter(ENERGY_TX) / answered / 1e6
        rx = r.counter(ENERGY_RX) / answered / 1e6
        print(f"  {name:>9s} {tx:>9.2f} {rx:>9.2f} {tx + rx:>9.2f}  {stories[name]}")

    best = min(SCHEMES, key=lambda s: energy_per_query_nj(results[s]))
    print(f"\nMost battery-efficient here: {best} — the adaptive methods "
          "avoid both failure modes.")


if __name__ == "__main__":
    main()
