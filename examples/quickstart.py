#!/usr/bin/env python3
"""Quickstart: simulate one wireless cell and print its metrics.

Runs the paper's AAW scheme on the Table 1 defaults (scaled to a few
seconds of wall time) and shows the headline metrics the paper reports:
queries answered (throughput) and uplink validation bits per query.

Usage::

    python examples/quickstart.py
"""

from repro import SystemParams, run_simulation


def main():
    params = SystemParams(
        simulation_time=10_000.0,   # 500 broadcast intervals
        n_clients=50,
        db_size=10_000,
        disconnect_prob=0.1,
        disconnect_time_mean=400.0,
        seed=42,
    )
    print("Simulating one cell: AAW scheme, UNIFORM workload")
    print(f"  {params.n_clients} clients, {params.db_size} items, "
          f"L={params.broadcast_interval:.0f} s, w={params.window_intervals} intervals")
    result = run_simulation(params, "uniform", "aaw")

    print("\nResults:")
    for key, value in result.summary().items():
        print(f"  {key:>22s}: {value:.4g}")

    print("\nReport mix broadcast by the adaptive server:")
    for kind in ("window", "window+", "bs"):
        count = result.counter(f"reports.{kind}")
        if count:
            print(f"  {kind:>8s}: {count:.0f}")

    assert result.stale_hits == 0, "consistency violated!"
    print("\nNo stale cache hit was served — the invalidation protocol held.")


if __name__ == "__main__":
    main()
