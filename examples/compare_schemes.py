#!/usr/bin/env python3
"""Compare every invalidation scheme on both paper workloads.

A miniature of Figures 5/11: one parameter point, all eight schemes
(the paper's four evaluated ones plus the TS/AT/SIG baselines it
discusses and the GCORE-inspired grouped checking), both UNIFORM and
HOTCOLD workloads.  Shows throughput, uplink validation cost, hit
ratio and full cache drops side by side.

Usage::

    python examples/compare_schemes.py
"""

from repro import SystemParams, run_schemes
from repro.schemes import available_schemes


def main():
    params = SystemParams(
        simulation_time=8_000.0,
        n_clients=50,
        db_size=10_000,
        disconnect_prob=0.2,
        disconnect_time_mean=600.0,   # beyond the 200 s window
        seed=7,
    )
    schemes = sorted(available_schemes())
    for workload in ("uniform", "hotcold"):
        print(f"\n=== {workload.upper()} workload "
              f"(disc 600 s @ p=0.2, beyond the w*L=200 s window) ===")
        results = run_schemes(params, workload, schemes)
        header = (f"  {'scheme':>9s} {'answered':>9s} {'uplink b/q':>11s} "
                  f"{'hit ratio':>10s} {'cache drops':>12s} {'IR share':>9s}")
        print(header)
        for name in schemes:
            r = results[name]
            print(
                f"  {name:>9s} {r.queries_answered:>9.0f} "
                f"{r.uplink_cost_per_query:>11.1f} {r.hit_ratio:>10.3f} "
                f"{r.counter('cache.full_drops'):>12.0f} "
                f"{r.downlink_ir_share:>9.3f}"
            )

    print(
        "\nReading guide: TS/AT drop whole caches after long gaps (high "
        "drops, low hit ratio);\nBS salvages without uplink but pays "
        "downlink (IR share); checking salvages precisely\nbut pays heavy "
        "uplink; AFW/AAW salvage at a few uplink bits per query."
    )


if __name__ == "__main__":
    main()
