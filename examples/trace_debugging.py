#!/usr/bin/env python3
"""Debugging a simulation with the kernel's event tracer.

Attaches a :class:`TraceRecorder` to a small cell simulation, filtered
down to process completions, and prints a window of the trace around an
interesting moment — the kind of inspection you reach for when a
protocol wedges.  (Tracing never perturbs results; the suite asserts
bit-identical metrics with and without it.)

Usage::

    python examples/trace_debugging.py
"""

from repro.des import Process, TraceRecorder
from repro.sim import SimulationModel, SystemParams, UNIFORM


def main():
    params = SystemParams(
        simulation_time=300.0,
        n_clients=3,
        db_size=50,
        buffer_fraction=0.2,
        disconnect_prob=0.0,
        seed=1,
    )
    model = SimulationModel(params, UNIFORM, "aaw")

    trace = TraceRecorder(limit=10_000)
    model.env.set_tracer(trace)
    result = model.run()

    print(f"Ran {params.simulation_time:.0f} s; {trace.seen} events processed, "
          f"{len(trace.records)} recorded.\n")

    print("Timeout events in the first broadcast interval (t < 20 s):")
    for record in trace.between(0.0, 20.0):
        if record.kind == "Timeout":
            print(f"  {record}")

    print("\nLast 8 recorded events:")
    print(trace.format(last=8))

    # A focused tracer: only watch process lifecycles.
    model2 = SimulationModel(params, UNIFORM, "aaw")
    lifecycle = TraceRecorder(predicate=lambda ev: isinstance(ev, Process))
    model2.env.set_tracer(lifecycle)
    result2 = model2.run()
    print(f"\nProcess completions only: {len(lifecycle.records)} records "
          f"(of {lifecycle.seen} events).")

    assert result.raw == result2.raw, "tracing must not perturb results"
    print("Metrics identical with both tracers — tracing is side-effect free.")


if __name__ == "__main__":
    main()
