#!/usr/bin/env python3
"""Extending the library with a custom invalidation scheme.

Implements "periodic-BS": a server that broadcasts the Bit-Sequences
report every k-th interval unconditionally and plain windows otherwise —
no uplink at all, like BS, but with a fraction of its downlink cost.
(The client reuses the stock adaptive logic minus the Tlb upload: if
neither report kind covers it, it waits for the next BS; we bound the
wait by the period k.)

This is the paper's design space: AFW broadcasts BS *on demand*;
periodic-BS broadcasts it *on a clock*.  The example registers the new
scheme, runs it against AFW and BS, and shows the trade.

Usage::

    python examples/custom_scheme.py
"""

from repro import SystemParams, run_schemes
from repro.reports import ReportKind
from repro.reports.bitseq import build_bitseq_report
from repro.reports.window import build_window_report
from repro.schemes import (
    ClientOutcome,
    ClientPolicy,
    Scheme,
    ServerPolicy,
    apply_invalidation,
    apply_window_report,
    reconcile_with_bitseq,
    register_scheme,
)


class PeriodicBSServer(ServerPolicy):
    """Window reports, except every k-th broadcast is a full BS report."""

    def __init__(self, params, db, every: int = 10):
        self.params = params
        self.db = db
        self.every = every
        self._tick = 0

    def build_report(self, ctx, now):
        self._tick += 1
        if self._tick % self.every == 0:
            return build_bitseq_report(
                self.db, now, origin=0.0,
                timestamp_bits=self.params.timestamp_bits,
            )
        return build_window_report(
            self.db, now, self.params.window_seconds,
            self.params.timestamp_bits,
        )


class PeriodicBSClient(ClientPolicy):
    """Use whatever covers; otherwise wait for the scheduled BS."""

    def __init__(self, params, client_id):
        self.params = params
        self.client_id = client_id

    def on_report(self, ctx, report):
        t = report.timestamp
        if report.kind is ReportKind.BIT_SEQUENCES:
            inv = report.invalidation_for(ctx.tlb)
            if inv.covered:
                reconcile_with_bitseq(ctx.cache, report)
                apply_invalidation(ctx.cache, inv, t)
            else:
                ctx.cache.drop_all()
                ctx.note_cache_drop()
                ctx.cache.certify(t)
            ctx.tlb = t
            return ClientOutcome.READY
        if report.covers(ctx.tlb):
            apply_window_report(ctx.cache, report)
            ctx.tlb = t
            return ClientOutcome.READY
        # Not covered: stay pending until the scheduled BS arrives.
        return ClientOutcome.PENDING


PERIODIC_BS = Scheme(
    name="periodic-bs",
    server_factory=PeriodicBSServer,
    client_factory=PeriodicBSClient,
    description="BS broadcast on a fixed clock instead of on demand",
)


def main():
    register_scheme(PERIODIC_BS, overwrite=True)
    params = SystemParams(
        simulation_time=8_000.0,
        n_clients=50,
        db_size=40_000,          # big db: BS reports are expensive
        disconnect_prob=0.2,
        disconnect_time_mean=600.0,
        seed=9,
    )
    results = run_schemes(params, "uniform", ["bs", "afw", "periodic-bs"])
    print("Custom scheme demo: periodic-BS vs on-demand (AFW) vs always (BS)")
    print(f"  {'scheme':>12s} {'answered':>9s} {'uplink b/q':>11s} "
          f"{'IR share':>9s} {'latency s':>10s} {'stale':>6s}")
    for name in ("bs", "periodic-bs", "afw"):
        r = results[name]
        print(
            f"  {name:>12s} {r.queries_answered:>9.0f} "
            f"{r.uplink_cost_per_query:>11.2f} {r.downlink_ir_share:>9.3f} "
            f"{r.mean_query_latency:>10.1f} {r.stale_hits:>6.0f}"
        )
    print(
        "\nPeriodic-BS spends an order of magnitude less downlink on "
        "reports than BS\nwith zero uplink; AFW spends a little uplink to "
        "broadcast BS only when a\nsleeper actually needs it."
    )


if __name__ == "__main__":
    main()
