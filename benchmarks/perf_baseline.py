"""Shared plumbing for the persisted perf baselines (``BENCH_*.json``).

``bench_des_kernel.py`` and ``bench_full_cell.py`` both double as
pytest-benchmark suites and as standalone emitters of machine-readable
baseline artifacts.  This module holds what they share: a timing loop
that records wall *and* CPU time (CI boxes and laptops throttle; CPU
time is the comparable number) and the JSON envelope with enough host
metadata to judge whether two baselines are comparable at all.

See docs/PERFORMANCE.md for how the baselines are meant to be read and
refreshed.
"""

from __future__ import annotations

import json
import platform
import sys
import time

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


def measure(fn, *args, repeats: int = 3):
    """Run ``fn(*args)`` *repeats* times; keep the fastest timings.

    Returns ``(result, wall_seconds, cpu_seconds)`` with the min over
    the repeats — the least-noise estimate on a machine with a
    fluctuating clock.  Wall and CPU minima are taken independently.
    """
    best_wall = best_cpu = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        result = fn(*args)
        cpu = time.process_time() - cpu0
        wall = time.perf_counter() - wall0
        best_wall = min(best_wall, wall)
        best_cpu = min(best_cpu, cpu)
    return result, best_wall, best_cpu


def baseline_envelope(kind: str, results: dict, config: dict) -> dict:
    """Wrap measured *results* in the persisted-baseline envelope."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "config": config,
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "results": results,
        "notes": (
            "Timings are min-of-N; prefer cpu_s when comparing across "
            "runs (wall clock is noisy on throttling hosts). "
            "Methodology and trajectory: docs/PERFORMANCE.md."
        ),
    }


def write_baseline(path: str, payload: dict) -> str:
    """Write *payload* as pretty JSON; returns the path for logging."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
