"""Shared plumbing for the persisted perf baselines (``BENCH_*.json``).

``bench_des_kernel.py`` and ``bench_full_cell.py`` both double as
pytest-benchmark suites and as standalone emitters of machine-readable
baseline artifacts.  This module holds what they share: a timing loop
that records wall *and* CPU time (CI boxes and laptops throttle; CPU
time is the comparable number) and the JSON envelope with enough host
metadata to judge whether two baselines are comparable at all.

See docs/PERFORMANCE.md for how the baselines are meant to be read and
refreshed.
"""

from __future__ import annotations

import json
import platform
import sys
import time

from repro.des._backend import heap_kind, kernel_backend

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


class BackendMismatch(RuntimeError):
    """Refusing to overwrite a baseline recorded under another backend."""


def measure(fn, *args, repeats: int = 3):
    """Run ``fn(*args)`` *repeats* times; keep the fastest timings.

    Returns ``(result, wall_seconds, cpu_seconds)`` with the min over
    the repeats — the least-noise estimate on a machine with a
    fluctuating clock.  Wall and CPU minima are taken independently.
    """
    best_wall = best_cpu = float("inf")
    result = None
    for _ in range(max(1, repeats)):
        wall0 = time.perf_counter()
        cpu0 = time.process_time()
        result = fn(*args)
        cpu = time.process_time() - cpu0
        wall = time.perf_counter() - wall0
        best_wall = min(best_wall, wall)
        best_cpu = min(best_cpu, cpu)
    return result, best_wall, best_cpu


def baseline_envelope(kind: str, results: dict, config: dict) -> dict:
    """Wrap measured *results* in the persisted-baseline envelope."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "config": config,
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
            "kernel_backend": kernel_backend(),
            "kernel_heap": heap_kind(),
        },
        "results": results,
        "notes": (
            "Timings are min-of-N; prefer cpu_s when comparing across "
            "runs (wall clock is noisy on throttling hosts). "
            "Methodology and trajectory: docs/PERFORMANCE.md."
        ),
    }


def write_baseline(path: str, payload: dict, force_backend: bool = False) -> str:
    """Write *payload* as pretty JSON; returns the path for logging.

    Compiled and interpreted kernels are bit-identical in behaviour but
    not in speed, so comparing their timings silently corrupts the perf
    trajectory.  If *path* already holds a baseline recorded under a
    different ``kernel_backend``, the write is refused with
    :class:`BackendMismatch` unless *force_backend* is set (every bench
    CLI exposes ``--force-backend`` for the deliberate case).  Baselines
    predating the backend stamp are treated as ``pure``.
    """
    if not force_backend:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                existing = json.load(fh)
        except (OSError, ValueError):
            existing = None
        if isinstance(existing, dict):
            old = existing.get("host", {}).get("kernel_backend", "pure")
            new = payload.get("host", {}).get("kernel_backend", "pure")
            if old != new:
                raise BackendMismatch(
                    f"{path} was recorded under kernel_backend={old!r} but this "
                    f"run is {new!r}; timings are not comparable across backends. "
                    "Pass --force-backend to overwrite anyway."
                )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path
