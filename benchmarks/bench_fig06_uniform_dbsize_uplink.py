"""Figure 6 — UNIFORM workload: uplink validation cost vs database size.

Paper's finding: BS consumes no uplink; the two adaptive methods spend a
small, stable cost; checking costs much more and grows with the database
size (wider ids in its full-cache uploads).
"""

from repro.analysis import ratio_of_means, relative_spread


def test_fig06_uniform_dbsize_uplink(regen):
    result = regen("fig06")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    assert max(bs) == 0.0
    # Adaptive costs are a few bits per query and essentially flat.
    assert max(max(aaw), max(afw)) < 50.0
    assert relative_spread(aaw) < 0.6
    # Checking costs dwarf the adaptive ones and grow with db size.
    assert ratio_of_means(checking, aaw) > 5.0
    assert ratio_of_means(checking, afw) > 5.0
    assert checking[-1] > checking[0]
