"""Figure 5 — UNIFORM workload: queries answered vs database size.

Paper's finding: BS throughput "goes down rapidly as the database size
increases" (its ~2N-bit report eats the downlink) while the other three
methods are "much less influenced", with checking performing best and
AAW beating AFW.
"""

from repro.analysis import dominates, mostly_decreasing, roughly_flat


def test_fig05_uniform_dbsize_throughput(regen):
    result = regen("fig05")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    # BS collapses with database size; the others stay level.
    assert mostly_decreasing(bs, slack=0.05)
    assert bs[-1] < 0.5 * bs[0]
    assert roughly_flat(aaw, tolerance=0.15)
    assert roughly_flat(checking, tolerance=0.15)

    # Relative ordering: checking and AAW lead, AFW pays for its full-BS
    # answers, BS trails everywhere beyond small databases.
    assert result.mean_of("checking") >= 0.97 * result.mean_of("aaw")
    assert result.mean_of("aaw") >= result.mean_of("afw")
    assert dominates(aaw[1:], bs[1:], margin=1.0)
    assert dominates(checking[1:], bs[1:], margin=1.0)
