"""Ablation — the paper's future work: a dedicated report channel.

Splits the downlink spectrum between a data channel and a dedicated
invalidation-report channel and sweeps the split.  Two lessons:

* spectrum is conserved — a fair split matches the shared channel's
  throughput while eliminating report preemptions of data transfers;
* sizing matters — oversizing the report channel starves data.
"""

from repro.experiments.figures import scale_from_env
from repro.sim import SimulationModel, SystemParams, UNIFORM

SPLITS = [None, 1000.0, 2000.0, 4000.0, 6000.0]  # None = shared channel
TOTAL_BPS = 10_000.0


def run_split_sweep():
    scale = scale_from_env()
    out = {}
    for ir_bps in SPLITS:
        params = SystemParams(
            simulation_time=scale.simulation_time,
            n_clients=scale.n_clients,
            db_size=20_000,
            disconnect_prob=0.1,
            disconnect_time_mean=400.0,
            downlink_bps=TOTAL_BPS - (ir_bps or 0.0),
            ir_channel_bps=ir_bps,
            seed=0,
        )
        model = SimulationModel(params, UNIFORM, "bs")
        result = model.run()
        out[ir_bps] = (result, model.downlink.stats.preemptions)
    return out


def test_report_channel_split(benchmark, capsys):
    results = benchmark.pedantic(run_split_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("ablation: splitting 10 kbps between data and report channels (BS)")
        print(f"  {'IR channel bps':>15s} {'answered':>9s} {'latency s':>10s} "
              f"{'data preemptions':>17s}")
        for ir_bps, (r, preemptions) in results.items():
            label = "shared" if ir_bps is None else f"{ir_bps:.0f}"
            print(f"  {label:>15s} {r.queries_answered:>9.0f} "
                  f"{r.mean_query_latency:>10.1f} {preemptions:>17d}")

    shared, shared_preempt = results[None]
    fair, fair_preempt = results[2000.0]
    starved, _ = results[6000.0]

    # Conservation at a fair split; isolation from preemptions.
    assert abs(fair.queries_answered - shared.queries_answered) < (
        0.08 * shared.queries_answered
    )
    assert shared_preempt > 0
    assert fair_preempt == 0
    # Oversizing the report channel starves the data channel.
    assert starved.queries_answered < 0.8 * fair.queries_answered
    # Consistency holds in every configuration.
    assert all(r.stale_hits == 0 for r, _p in results.values())
