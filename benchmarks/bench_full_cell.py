"""Macro-benchmark: full cell simulations at paper scale, per scheme.

Two configurations bound the simulator's perf envelope:

* ``pristine-100`` — the paper's Table 1 cell (100 clients, 1000-item
  database, UNIFORM queries, doze cycle on) on a lossless medium at a
  short horizon.  This config is pinned bit-identical across kernel
  changes by ``tests/sim/test_kernel_golden.py``.
* ``lossy-300`` — a dense cell (300 clients, 30 % disconnection) with
  wireless fault injection on the downlink: the regime where broadcast
  fan-out and per-receiver fault judgment dominate, i.e. where the
  dispatch optimizations matter most.

Each (config, scheme) cell reports wall and CPU seconds, kernel events
scheduled and events/second.  Run as a script to refresh the persisted
baseline::

    PYTHONPATH=src python benchmarks/bench_full_cell.py --out BENCH_full_cell.json

CI runs the same at ``--horizon-scale 0.1``; the hard assertions are
event-count/liveness checks only — never wall-clock — so the job cannot
flake on a slow runner.  See docs/PERFORMANCE.md.
"""

from repro.net import FaultConfig
from repro.sim import SystemParams, UNIFORM, run_simulation

SCHEMES = ("ts", "bs", "afw", "aaw", "checking")

#: Keyword bases for the two benchmark cells; ``simulation_time`` is
#: multiplied by the horizon scale.
CONFIGS = {
    "pristine-100": dict(
        simulation_time=5_000.0,
        n_clients=100,
        db_size=1_000,
        disconnect_prob=0.1,
        disconnect_time_mean=200.0,
        seed=1,
    ),
    "lossy-300": dict(
        simulation_time=3_000.0,
        n_clients=300,
        db_size=1_000,
        disconnect_prob=0.3,
        disconnect_time_mean=300.0,
        seed=1,
    ),
}


def params_for(config: str, horizon_scale: float = 1.0) -> SystemParams:
    kwargs = dict(CONFIGS[config])
    kwargs["simulation_time"] = kwargs["simulation_time"] * horizon_scale
    if config == "lossy-300":
        kwargs["downlink_faults"] = FaultConfig(
            drop_prob=0.02, bit_error_rate=1e-6
        )
    return SystemParams(**kwargs)


def check_cell(result, n_clients: int):
    """Hard correctness gates (event counts / liveness), never timing."""
    events = result.counter("kernel.events_scheduled")
    generated = result.counter("queries.generated")
    assert events > 0, "kernel scheduled no events"
    assert generated > 0, "no queries generated"
    assert result.queries_answered > 0, "no queries answered"
    # Liveness: at most one query in flight per client at the horizon.
    in_flight = generated - result.queries_answered
    assert 0 <= in_flight <= n_clients, f"{in_flight} queries unaccounted for"
    assert result.stale_hits == 0, "exactness violated"


def run_cell(config: str, scheme: str, horizon_scale: float = 1.0):
    params = params_for(config, horizon_scale)
    result = run_simulation(params, UNIFORM, scheme)
    check_cell(result, params.n_clients)
    return result


def collect_full_cell_baseline(
    horizon_scale: float = 1.0, repeats: int = 2, schemes=SCHEMES
) -> dict:
    """Time every (config, scheme) cell; returns the ``results`` map."""
    from perf_baseline import measure

    results = {}
    for config in CONFIGS:
        per_scheme = {}
        total_cpu = 0.0
        total_wall = 0.0
        for scheme in schemes:
            result, wall, cpu = measure(
                run_cell, config, scheme, horizon_scale, repeats=repeats
            )
            events = result.counter("kernel.events_scheduled")
            per_scheme[scheme] = {
                "wall_s": round(wall, 6),
                "cpu_s": round(cpu, 6),
                "events_scheduled": int(events),
                "events_per_sec_cpu": round(events / cpu, 1) if cpu else None,
                "queries_answered": result.queries_answered,
            }
            total_cpu += cpu
            total_wall += wall
        per_scheme["_total"] = {
            "wall_s": round(total_wall, 6),
            "cpu_s": round(total_cpu, 6),
        }
        results[config] = per_scheme
    return results


# -- pytest entry points ---------------------------------------------------


def test_macro_pristine_cell(benchmark):
    result = benchmark.pedantic(
        run_cell, args=("pristine-100", "aaw", 0.2), rounds=1, iterations=1
    )
    assert result.counter("kernel.events_scheduled") > 0


def test_macro_lossy_cell(benchmark):
    result = benchmark.pedantic(
        run_cell, args=("lossy-300", "aaw", 0.2), rounds=1, iterations=1
    )
    assert result.counter("downlink.fault_judged") > 0


def test_event_counts_deterministic():
    """The macro-bench unit is reproducible: same config, same events."""
    a = run_cell("pristine-100", "ts", horizon_scale=0.1)
    b = run_cell("pristine-100", "ts", horizon_scale=0.1)
    assert a.raw == b.raw


# -- baseline emission -----------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_full_cell.json")
    parser.add_argument("--horizon-scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--force-backend",
        action="store_true",
        help="overwrite a baseline recorded under a different kernel backend",
    )
    args = parser.parse_args(argv)
    from perf_baseline import baseline_envelope, write_baseline

    results = collect_full_cell_baseline(
        horizon_scale=args.horizon_scale, repeats=args.repeats
    )
    payload = baseline_envelope(
        "full_cell",
        results,
        config={
            "horizon_scale": args.horizon_scale,
            "repeats": args.repeats,
            "schemes": list(SCHEMES),
            "cells": CONFIGS,
        },
    )
    print(f"wrote {write_baseline(args.out, payload, args.force_backend)}")
    for config, per_scheme in results.items():
        total = per_scheme["_total"]
        print(
            f"  {config:>14s}  total cpu {total['cpu_s']:.3f}s "
            f"wall {total['wall_s']:.3f}s"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
