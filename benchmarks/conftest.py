"""Shared fixtures for the figure-regeneration benchmarks.

Each figure bench times one full sweep (all schemes x all sweep points)
with pytest-benchmark, prints the regenerated series — the same rows the
paper plots — and asserts the figure's qualitative *shape* (who wins, the
growth direction, crossovers).  ``REPRO_SCALE=full`` switches from the
fast bench scale to the paper's Table 1 scale.
"""

import pytest

from repro.experiments import (
    format_figure,
    get_figure,
    run_figure,
    scale_from_env,
)


@pytest.fixture
def regen(benchmark, capsys):
    """Run one figure sweep under the benchmark timer and print it."""

    def _run(figure_id: str, **kwargs):
        spec = get_figure(figure_id)
        scale = scale_from_env()
        result = benchmark.pedantic(
            lambda: run_figure(spec, scale=scale, **kwargs),
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(format_figure(result))
        return result

    return _run
