"""Shared fixtures for the figure-regeneration benchmarks.

Each figure bench times one full sweep (all schemes x all sweep points)
with pytest-benchmark, prints the regenerated series — the same rows the
paper plots — and asserts the figure's qualitative *shape* (who wins, the
growth direction, crossovers).  ``REPRO_SCALE=full`` switches from the
fast bench scale to the paper's Table 1 scale.

Sweeps fan their cells over a process pool sized from ``os.cpu_count()``
(``REPRO_WORKERS`` overrides; cells are deterministic, so the series are
identical at any worker count — only wall-clock moves).
"""

import os

import pytest

from repro.experiments import (
    format_figure,
    run_figure_parallel,
    scale_from_env,
)


def workers_from_env():
    """Sweep worker count: ``REPRO_WORKERS`` (int or ``auto``) or auto."""
    value = os.environ.get("REPRO_WORKERS", "auto")
    return value if value == "auto" else int(value)


@pytest.fixture
def regen(benchmark, capsys):
    """Run one figure sweep under the benchmark timer and print it."""

    def _run(figure_id: str, **kwargs):
        scale = scale_from_env()
        workers = workers_from_env()
        result = benchmark.pedantic(
            lambda: run_figure_parallel(
                figure_id, scale=scale, workers=workers, **kwargs
            ),
            rounds=1,
            iterations=1,
        )
        with capsys.disabled():
            print()
            print(format_figure(result))
        return result

    return _run
