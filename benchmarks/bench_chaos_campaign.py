"""Chaos campaign: endpoint failures under the hard safety oracle.

Runs a seeded campaign matrix — chaos seeds x failure modes
{server-crash, client-crash, clock-skew, combined} — with
``strict_staleness`` armed, so any stale cache hit raises
:class:`repro.chaos.StalenessViolation` inside the run instead of
averaging into a counter.  Schemes rotate across the matrix so every
family (window, adaptive, bit-sequences, checking, amnesic, signatures)
faces every failure mode over the seed set.

The assertions are the PR's robustness claims:

* *safety* — zero stale reads in every cell (the strict oracle would
  have raised first anyway);
* *liveness* — every issued query is answered or pending at the horizon
  (at most one per client), despite crashes eating uplink requests;
* *the chaos actually happened* — server/client crash counters are
  nonzero in the modes that inject them, and epoch purges fired.
"""

from sweep_common import format_sweep_table, run_loss_sweep

from repro.chaos import ChaosConfig
from repro.sim import SystemParams, UNIFORM

SEEDS = [1, 2, 3]
MODES = ["server-crash", "client-crash", "clock-skew", "combined"]
SCHEMES = ["aaw", "afw", "checking", "bs", "at", "sig", "ts", "gcore"]

SIM_TIME = 6000.0
N_CLIENTS = 16


def chaos_for(mode, seed):
    if mode == "server-crash":
        return ChaosConfig(seed=seed, server_crash_mtbf=1200.0,
                           server_downtime_mean=150.0)
    if mode == "client-crash":
        return ChaosConfig(seed=seed, client_crash_mtbf=2000.0)
    if mode == "clock-skew":
        return ChaosConfig(seed=seed, clock_skew_max=10.0, clock_drift_max=0.05)
    return ChaosConfig(
        seed=seed,
        server_crash_mtbf=1500.0,
        server_downtime_mean=120.0,
        client_crash_mtbf=2500.0,
        clock_skew_max=10.0,
        clock_drift_max=0.05,
    )


def configure(seed, mode):
    # Rotate the scheme so each (mode, seed) cell exercises a different
    # policy family; over the seed set every family sees every mode.
    scheme = SCHEMES[(int(seed) * len(MODES) + MODES.index(mode)) % len(SCHEMES)]
    params = SystemParams(
        simulation_time=SIM_TIME,
        n_clients=N_CLIENTS,
        db_size=600,
        buffer_fraction=0.05,
        think_time_mean=50.0,
        update_interarrival_mean=40.0,
        disconnect_prob=0.15,
        disconnect_time_mean=400.0,
        uplink_timeout=120.0,
        max_retries=4,
        strict_staleness=True,
        chaos=chaos_for(mode, int(seed)),
        seed=int(seed),
    )
    return params, scheme


def run_campaign():
    return run_loss_sweep(SEEDS, MODES, configure, UNIFORM)


def test_chaos_campaign(benchmark, capsys):
    results = benchmark.pedantic(run_campaign, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_sweep_table(
                "chaos campaign: seed vs failure mode (answered/crashes/purges)",
                results,
                SEEDS,
                MODES,
                lambda r: (
                    f"{r.queries_answered:.0f}/"
                    f"{r.server_crashes + r.counter('chaos.client_crashes'):.0f}/"
                    f"{r.epoch_purges:.0f}"
                ),
            )
        )

    for (seed, mode), r in results.items():
        # Safety: the strict oracle ran the whole cell without raising,
        # and the counter agrees.
        assert r.stale_hits == 0, (seed, mode)
        # Liveness: the query ledger balances at the horizon.
        assert r.liveness_ok, (seed, mode, r.queries_pending)
        assert 0 <= r.queries_pending <= N_CLIENTS, (seed, mode)
        # The campaign was not a no-op.
        if mode in ("server-crash", "combined"):
            assert r.server_crashes > 0, (seed, mode)
            assert r.epoch_purges > 0, (seed, mode)
        if mode in ("client-crash", "combined"):
            assert r.counter("chaos.client_crashes") > 0, (seed, mode)
        assert r.oracle_verdict == "SAFE", (seed, mode, r.oracle_verdict)
