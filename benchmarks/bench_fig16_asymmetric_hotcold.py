"""Figure 16 — asymmetric channels, HOTCOLD: queries answered vs uplink
bandwidth.

Paper's finding: the same low-uplink crossover as Figure 15, at the
higher absolute level the hot-set locality affords.
"""

from repro.analysis import mostly_increasing


def test_fig16_asymmetric_hotcold(regen):
    result = regen("fig16")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking = result.series["checking"]

    for series in (aaw, afw, checking):
        assert mostly_increasing(series, slack=0.05)

    # The hot set shrinks miss traffic, so the uplink binds less tightly
    # than in Figure 15: the adaptive lead is clear at the two narrowest
    # points and at worst parity at the third.
    for i in range(2):
        assert aaw[i] > 1.01 * checking[i]
        assert afw[i] > 1.01 * checking[i]
    assert aaw[2] >= 0.98 * checking[2]
    assert abs(aaw[-1] - checking[-1]) / checking[-1] < 0.05
