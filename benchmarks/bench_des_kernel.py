"""Microbenchmarks of the discrete-event kernel.

The whole evaluation rides on this substrate; these benches make kernel
performance regressions visible (events/second, store handoffs, channel
transmissions, broadcast fan-out).

Run as a script to refresh the persisted baseline::

    PYTHONPATH=src python benchmarks/bench_des_kernel.py --out BENCH_kernel.json
"""

from repro.des import Environment, Store
from repro.net import BROADCAST, Channel, Message, MessageKind, SERVER_ID


def pump_timeouts(n_events: int):
    env = Environment()

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return env.now


def test_event_throughput(benchmark):
    result = benchmark(pump_timeouts, 20_000)
    assert result == 20_000


def pump_sleep_fast_lane(n_events: int):
    """The timeout fast lane: a bare delay yield allocates no Event."""
    env = Environment()

    def ticker(env):
        for _ in range(n_events):
            yield 1.0

    env.process(ticker(env))
    env.run()
    return env.now


def test_sleep_fast_lane_throughput(benchmark):
    result = benchmark(pump_sleep_fast_lane, 20_000)
    assert result == 20_000


def pump_store(n_items: int):
    env = Environment()
    store = Store(env)
    moved = []

    def producer(env):
        for i in range(n_items):
            yield store.put(i)

    def consumer(env):
        for _ in range(n_items):
            moved.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return len(moved)


def test_store_handoff_throughput(benchmark):
    assert benchmark(pump_store, 5_000) == 5_000


def pump_channel(n_messages: int):
    env = Environment()
    channel = Channel(env, bandwidth_bps=1e6)
    delivered = []
    channel.attach(lambda msg, now: delivered.append(msg))
    for i in range(n_messages):
        channel.send(
            Message(
                kind=MessageKind.DATA_ITEM,
                size_bits=100,
                src=SERVER_ID,
                dest=BROADCAST,
                payload=i,
            )
        )
    env.run()
    return len(delivered)


def test_channel_throughput(benchmark):
    assert benchmark(pump_channel, 5_000) == 5_000


def pump_broadcast(n_messages: int, n_receivers: int = 100, dozing: int = 50):
    """Broadcast fan-out dispatch: a cell-sized receiver population.

    Half the receivers doze (``set_listening(False)``) — the dispatch
    must skip them without per-receiver work, the shape of a real cell
    where disconnected clients power the radio down.
    """
    env = Environment()
    channel = Channel(env, bandwidth_bps=1e6)
    delivered = [0]

    def make_receiver(i):
        def receiver(msg, now):
            delivered[0] += 1

        return receiver

    receivers = [make_receiver(i) for i in range(n_receivers)]
    for i, receiver in enumerate(receivers):
        channel.attach(receiver, dest=i)
    for receiver in receivers[:dozing]:
        channel.set_listening(receiver, False)
    for i in range(n_messages):
        channel.send(
            Message(
                kind=MessageKind.INVALIDATION_REPORT,
                size_bits=1_000,
                src=SERVER_ID,
                dest=BROADCAST,
                payload=i,
            )
        )
    env.run()
    return delivered[0]


def test_broadcast_dispatch_throughput(benchmark):
    delivered = benchmark(pump_broadcast, 1_000)
    # Every message reaches exactly the 50 listening receivers.
    assert delivered == 1_000 * 50


def run_small_cell():
    from repro.sim import SystemParams, UNIFORM, run_simulation

    params = SystemParams(
        simulation_time=2_000.0,
        n_clients=20,
        db_size=1_000,
        disconnect_prob=0.1,
        disconnect_time_mean=200.0,
        seed=1,
    )
    return run_simulation(params, UNIFORM, "aaw")


def test_full_cell_simulation(benchmark):
    """End-to-end cost of one small cell-simulation (the sweep unit)."""
    result = benchmark(run_small_cell)
    assert result.queries_answered > 0


# -- persisted baseline (BENCH_kernel.json) --------------------------------

#: name -> (fn, arg, expected result, unit count per run).  The expected
#: result is a hard correctness gate: the baseline refuses to persist
#: timings for a kernel that miscounts its own events.
KERNEL_BENCHES = {
    "timeout_events": (pump_timeouts, 20_000, 20_000, 20_000),
    "sleep_fast_lane_events": (pump_sleep_fast_lane, 20_000, 20_000, 20_000),
    "store_handoffs": (pump_store, 5_000, 5_000, 5_000),
    "channel_messages": (pump_channel, 5_000, 5_000, 5_000),
    "broadcast_100rx_deliveries": (pump_broadcast, 1_000, 50_000, 50_000),
}


def collect_kernel_baseline(scale: float = 1.0, repeats: int = 3) -> dict:
    """Time every kernel bench; returns the ``results`` mapping.

    *scale* shrinks the workloads (CI smoke runs at 0.1); the hard
    event-count assertions scale with it.
    """
    from perf_baseline import measure

    results = {}
    for name, (fn, arg, expected, units) in KERNEL_BENCHES.items():
        n = max(1, int(arg * scale))
        result, wall, cpu = measure(fn, n, repeats=repeats)
        scaled_expected = expected * n // arg
        assert result == scaled_expected, (
            f"{name}: produced {result}, expected {scaled_expected}"
        )
        count = units * n // arg
        results[name] = {
            "n": n,
            "wall_s": round(wall, 6),
            "cpu_s": round(cpu, 6),
            "per_sec_cpu": round(count / cpu, 1) if cpu else None,
        }
    return results


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--force-backend",
        action="store_true",
        help="overwrite a baseline recorded under a different kernel backend",
    )
    args = parser.parse_args(argv)
    from perf_baseline import baseline_envelope, write_baseline

    results = collect_kernel_baseline(scale=args.scale, repeats=args.repeats)
    payload = baseline_envelope(
        "kernel",
        results,
        config={"scale": args.scale, "repeats": args.repeats},
    )
    print(f"wrote {write_baseline(args.out, payload, args.force_backend)}")
    for name, row in results.items():
        print(f"  {name:>28s}  cpu {row['cpu_s']:.4f}s  {row['per_sec_cpu']:.0f}/s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

