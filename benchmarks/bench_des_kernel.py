"""Microbenchmarks of the discrete-event kernel.

The whole evaluation rides on this substrate; these benches make kernel
performance regressions visible (events/second, store handoffs, channel
transmissions).
"""

from repro.des import Environment, Store
from repro.net import BROADCAST, Channel, Message, MessageKind, SERVER_ID


def pump_timeouts(n_events: int):
    env = Environment()

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run()
    return env.now


def test_event_throughput(benchmark):
    result = benchmark(pump_timeouts, 20_000)
    assert result == 20_000


def pump_store(n_items: int):
    env = Environment()
    store = Store(env)
    moved = []

    def producer(env):
        for i in range(n_items):
            yield store.put(i)

    def consumer(env):
        for _ in range(n_items):
            moved.append((yield store.get()))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    return len(moved)


def test_store_handoff_throughput(benchmark):
    assert benchmark(pump_store, 5_000) == 5_000


def pump_channel(n_messages: int):
    env = Environment()
    channel = Channel(env, bandwidth_bps=1e6)
    delivered = []
    channel.attach(lambda msg, now: delivered.append(msg))
    for i in range(n_messages):
        channel.send(
            Message(
                kind=MessageKind.DATA_ITEM,
                size_bits=100,
                src=SERVER_ID,
                dest=BROADCAST,
                payload=i,
            )
        )
    env.run()
    return len(delivered)


def test_channel_throughput(benchmark):
    assert benchmark(pump_channel, 5_000) == 5_000


def run_small_cell():
    from repro.sim import SystemParams, UNIFORM, run_simulation

    params = SystemParams(
        simulation_time=2_000.0,
        n_clients=20,
        db_size=1_000,
        disconnect_prob=0.1,
        disconnect_time_mean=200.0,
        seed=1,
    )
    return run_simulation(params, UNIFORM, "aaw")


def test_full_cell_simulation(benchmark):
    """End-to-end cost of one small cell-simulation (the sweep unit)."""
    result = benchmark(run_small_cell)
    assert result.queries_answered > 0
