"""Figure 10 — UNIFORM workload: uplink validation cost vs mean
disconnection time (1 % client buffers).

Paper's finding: checking's validation traffic stays an order of
magnitude above the adaptive methods' across the whole disconnection
range; BS spends nothing.
"""

from repro.analysis import ratio_of_means


def test_fig10_uniform_disctime_uplink(regen):
    result = regen("fig10")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    assert max(bs) == 0.0
    assert max(max(aaw), max(afw)) < 30.0
    assert ratio_of_means(checking, aaw) > 20.0
    assert all(c > 10 * max(a, f) for c, a, f in zip(checking, aaw, afw))
