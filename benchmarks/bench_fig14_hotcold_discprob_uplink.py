"""Figure 14 — HOTCOLD workload: uplink validation cost vs disconnection
probability.

Paper's finding: as Figure 8 — validation costs grow with p, checking
far above the adaptive pair, BS at zero.
"""

from repro.analysis import mostly_increasing, ratio_of_means


def test_fig14_hotcold_discprob_uplink(regen):
    result = regen("fig14")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    assert max(bs) == 0.0
    assert mostly_increasing(checking, slack=0.1)
    assert checking[-1] > 2 * checking[0]
    assert ratio_of_means(checking, aaw) > 20.0
    assert ratio_of_means(checking, afw) > 20.0
