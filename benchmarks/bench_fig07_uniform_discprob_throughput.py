"""Figure 7 — UNIFORM workload: queries answered vs disconnection
probability.

Paper's finding: throughput declines only mildly as clients disconnect
more often; BS sits below the other three throughout; AAW beats AFW.
"""

from repro.analysis import dominates, relative_spread


def test_fig07_uniform_discprob_throughput(regen):
    result = regen("fig07")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    # Mild decline: each curve ends at or below its start, with small
    # overall spread.
    for series in (aaw, afw, checking, bs):
        assert series[-1] <= series[0]
        assert relative_spread(series) < 0.15

    # BS trails everyone; AAW >= AFW.
    assert dominates(aaw, bs, margin=1.02)
    assert dominates(checking, bs, margin=1.02)
    assert result.mean_of("aaw") >= result.mean_of("afw")
