"""Megacell benchmark: ≥100k-client cells via population aggregation.

The exact simulator builds one coroutine + cache per client, which caps
a cell around a few hundred clients; the population pool
(:mod:`repro.sim.population`) keeps only the K "interesting" clients
full-fidelity and parks the long-dozing tail as counts-per-stratum, so a
cell's working set scales with the *churn* (absorbs/promotions per
interval), not the population.  This bench pins that trajectory:

* ``megacell-100k`` — 100 000 clients, ~64 live at any instant;
* ``megacell-1m`` — the ROADMAP's million-client cell (~128 live).

Both start in the pool's steady-state initial condition
(``start_in_pool=1.0``), an explicit approximation: members park
mid-doze at t=0 instead of being constructed, so these configs are *not*
bit-comparable to an exact run — the differential campaign
(tests/sim/test_population_differential.py) establishes equivalence at
sizes where both models fit.  Every hard assertion below is an
event-count / conservation / liveness check, never wall-clock or RSS
(shared runners throttle unpredictably); memory numbers ride the JSON
payload as telemetry.  Refresh the persisted baseline with::

    PYTHONPATH=src python benchmarks/bench_megacell.py --out BENCH_megacell.json

CI's megacell-smoke step runs the 100k config only (the 1M build alone
costs ~25 s) at a reduced horizon.
"""

import resource

from repro.sim import AggregationConfig, SystemParams, UNIFORM, run_simulation

#: Keyword bases per config; ``simulation_time`` scales with the horizon.
CONFIGS = {
    "megacell-100k": dict(
        simulation_time=600.0,
        n_clients=100_000,
        k_exact=64,
        seed=11,
    ),
    "megacell-1m": dict(
        simulation_time=200.0,
        n_clients=1_000_000,
        k_exact=128,
        seed=11,
    ),
}

#: Shared cell shape: a dense population dominated by long dozes (the
#: regime aggregation exists for — think 100k phones, most of them
#: pocketed), over the paper's 1000-item database.
BASE = dict(
    db_size=1_000,
    buffer_fraction=0.02,
    think_time_mean=100.0,
    update_interarrival_mean=100.0,
    disconnect_prob=0.9,
    warm_start=True,
)


def params_for(config: str, horizon_scale: float = 1.0) -> SystemParams:
    kwargs = dict(CONFIGS[config])
    k_exact = kwargs.pop("k_exact")
    kwargs["simulation_time"] = kwargs["simulation_time"] * horizon_scale
    # Dozes far longer than the horizon: the tail stays pooled and the
    # live set is churn-bound, which is exactly the claim under test.
    kwargs["disconnect_time_mean"] = 500.0 * kwargs["simulation_time"]
    return SystemParams(
        **BASE,
        **kwargs,
        aggregation=AggregationConfig(
            k_exact=k_exact, start_in_pool=1.0, min_doze_intervals=2.0
        ),
    )


def check_megacell(result, params: SystemParams):
    """Hard gates: event counts, conservation, liveness — never timing."""
    assert result.counter("kernel.events_scheduled") > 0, "no events"
    assert result.queries_answered > 0, "no queries answered"
    assert result.counter("pool.seeded") > 0, "pool never seeded"
    assert result.counter("pool.promoted") > 0, "no member promoted"
    # Conservation: every client is live or pooled at the horizon.
    live = result.raw["clients.live_at_horizon"]
    residents = result.raw["pool.residents_at_horizon"]
    assert live + residents == params.n_clients, "pool leaked clients"
    # The point of the pool: the live set stays a sliver of the cell.
    assert live <= max(0.05 * params.n_clients, 10 * params.aggregation.k_exact), (
        f"{live} live actors — aggregation is not holding the tail"
    )
    assert result.raw["oracle.liveness_ok"] == 1.0, "liveness ledger imbalance"
    assert result.stale_hits == 0, "exactness violated"


def run_megacell(config: str, scheme: str = "aaw", horizon_scale: float = 1.0):
    params = params_for(config, horizon_scale)
    result = run_simulation(params, UNIFORM, scheme)
    check_megacell(result, params)
    return result


def collect_megacell_baseline(
    horizon_scale: float = 1.0, configs=tuple(CONFIGS)
) -> dict:
    from perf_baseline import measure

    results = {}
    for config in configs:
        result, wall, cpu = measure(
            run_megacell, config, "aaw", horizon_scale, repeats=1
        )
        events = result.counter("kernel.events_scheduled")
        results[config] = {
            "n_clients": CONFIGS[config]["n_clients"],
            "wall_s": round(wall, 6),
            "cpu_s": round(cpu, 6),
            "events_scheduled": int(events),
            "events_per_sec_cpu": round(events / cpu, 1) if cpu else None,
            "queries_answered": result.queries_answered,
            "pool_seeded": result.counter("pool.seeded"),
            "pool_absorbed": result.counter("pool.absorbed"),
            "pool_promoted": result.counter("pool.promoted"),
            "pool_peak_residents": result.raw["pool.peak_residents"],
            "pool_strata_at_horizon": result.raw["pool.strata_at_horizon"],
            "clients_live_at_horizon": result.raw["clients.live_at_horizon"],
            # Process high-water mark AFTER this run: an upper bound on
            # the cell's footprint (telemetry only, never asserted).
            "rss_peak_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
            ),
        }
    return results


# -- pytest entry points (CI megacell-smoke runs exactly these) -------------


def test_megacell_100k_smoke():
    """A 100k-client cell completes with the tail held in the pool."""
    run_megacell("megacell-100k", "aaw", horizon_scale=0.5)


def test_megacell_event_counts_deterministic():
    """Same config, same seed, same events — seeding included."""
    a = run_megacell("megacell-100k", "ts", horizon_scale=0.2)
    b = run_megacell("megacell-100k", "ts", horizon_scale=0.2)
    assert a.raw == b.raw


# -- baseline emission -----------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_megacell.json")
    parser.add_argument("--horizon-scale", type=float, default=1.0)
    parser.add_argument(
        "--configs",
        nargs="+",
        default=list(CONFIGS),
        choices=list(CONFIGS),
        help="subset of cells to run (CI runs megacell-100k only)",
    )
    parser.add_argument(
        "--force-backend",
        action="store_true",
        help="overwrite a baseline recorded under a different kernel backend",
    )
    args = parser.parse_args(argv)
    from perf_baseline import baseline_envelope, write_baseline

    results = collect_megacell_baseline(
        horizon_scale=args.horizon_scale, configs=tuple(args.configs)
    )
    payload = baseline_envelope(
        "megacell",
        results,
        config={
            "horizon_scale": args.horizon_scale,
            "configs": {name: CONFIGS[name] for name in args.configs},
            "base": BASE,
            "scheme": "aaw",
        },
    )
    print(f"wrote {write_baseline(args.out, payload, args.force_backend)}")
    for config, row in results.items():
        print(
            f"  {config:>14s}  {row['n_clients']:>9,d} clients  "
            f"cpu {row['cpu_s']:.2f}s  rss≤{row['rss_peak_mb']:.0f}MB  "
            f"live {int(row['clients_live_at_horizon'])}  "
            f"promoted {int(row['pool_promoted'])}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
