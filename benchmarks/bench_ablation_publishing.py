"""Ablation — publishing mode (Section 1's listen-only dissemination).

Sweeps the push rate on a hot-churn workload (queries *and* updates
concentrate on a 100-item hot region).  Published copies replace the
on-demand re-fetches that hot-item invalidations otherwise force — up to
the point where pushes themselves saturate the downlink.
"""

from repro.experiments.figures import scale_from_env
from repro.sim import SimulationModel, SystemParams
from repro.sim.metrics import PUBLISH_REFRESHES, UPLINK_REQUEST_BITS
from repro.sim.workload import Workload

PUSH_RATES = (0, 1, 2, 3)

HOT_CHURN = Workload(
    name="hot-churn",
    query_hot=(0, 99),
    query_hot_prob=0.8,
    update_hot=(0, 99),
    update_hot_prob=0.8,
)


def run_push_sweep():
    scale = scale_from_env()
    out = {}
    for rate in PUSH_RATES:
        params = SystemParams(
            simulation_time=min(scale.simulation_time, 12_000.0),
            n_clients=scale.n_clients,
            db_size=2_000,
            buffer_fraction=0.06,
            disconnect_prob=0.1,
            disconnect_time_mean=300.0,
            update_interarrival_mean=40.0,
            publish_per_interval=rate,
            publish_region=(0, 99) if rate else None,
            seed=0,
        )
        out[rate] = SimulationModel(params, HOT_CHURN, "aaw").run()
    return out


def test_publishing_rate_sweep(benchmark, capsys):
    results = benchmark.pedantic(run_push_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("ablation: publishing mode push rate (hot-churn workload, AAW)")
        print(f"  {'push/interval':>14s} {'answered':>9s} {'hit ratio':>10s} "
              f"{'uplink req Mb':>14s} {'refreshes':>10s}")
        for rate, r in results.items():
            print(
                f"  {rate:>14d} {r.queries_answered:>9.0f} "
                f"{r.hit_ratio:>10.3f} "
                f"{r.counter(UPLINK_REQUEST_BITS) / 1e6:>14.2f} "
                f"{r.counter(PUBLISH_REFRESHES):>10.0f}"
            )

    # Moderate pushing lifts the hit ratio and cuts uplink fetch traffic.
    assert results[2].hit_ratio > results[0].hit_ratio
    assert results[2].counter(UPLINK_REQUEST_BITS) < results[0].counter(
        UPLINK_REQUEST_BITS
    )
    # Pushes strictly monotone in the configured rate.
    refreshes = [results[r].counter(PUBLISH_REFRESHES) for r in PUSH_RATES]
    assert refreshes[0] == 0
    assert all(b > a for a, b in zip(refreshes, refreshes[1:]))
    # Consistency holds with concurrent pushes, reports and fetches.
    assert all(r.stale_hits == 0 for r in results.values())
