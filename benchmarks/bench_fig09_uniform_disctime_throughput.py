"""Figure 9 — UNIFORM workload: queries answered vs mean disconnection
time (1 % client buffers).

Paper's finding: throughput is nearly insensitive to how long the
disconnections last (the downlink stays the bottleneck); BS trails the
other three.
"""

from repro.analysis import dominates, relative_spread


def test_fig09_uniform_disctime_throughput(regen):
    result = regen("fig09")
    aaw = result.series["aaw"]
    bs = result.series["bs"]

    for scheme in ("aaw", "afw", "checking", "bs"):
        assert relative_spread(result.series[scheme]) < 0.1
    assert dominates(aaw, bs, margin=1.02)
    assert result.mean_of("checking") >= 0.97 * result.mean_of("aaw")
