"""Multi-cell roaming campaign: cell outages, handoffs, salvage economics.

Two sweeps, both fanned out over the parallel harness in
:mod:`sweep_common` and both under the strict safety oracle:

* **Roaming storm** — chaos seeds x propagation modes {eager-push,
  lazy-pull, parent-cache} on a four-cell path around the gateway, with
  sampled whole-cell outages forcing evacuation storms and seeded
  mid-doze handoffs throughout.  Schemes rotate across the matrix so
  every policy family faces every propagation mode over the seed set.
* **Cooperative salvage differential** — one scripted fed-cell outage
  whose post-restart snapshot leaves a history amnesia gap, run with
  cooperation on and off for the paper's adaptive schemes.  The claim
  in the persisted baseline: neighbor backfills measurably reduce full
  cache purges (``cache.full_drops``) versus the identical scenario
  without cooperation, at zero safety cost.

The hard assertions are event-count/liveness checks only — never
wall-clock — so the CI job cannot flake on a slow runner.  Run as a
script to refresh the persisted baseline::

    PYTHONPATH=src python benchmarks/bench_multicell_roaming.py --out BENCH_multicell.json

See docs/FAULTS.md (whole-cell outages) and docs/PROTOCOLS.md (roaming
and inter-server propagation) for the protocol story.
"""

from sweep_common import format_sweep_table, run_loss_sweep

from repro.chaos import ChaosConfig
from repro.sim import SystemParams, UNIFORM
from repro.topology import (
    EAGER_PUSH,
    LAZY_PULL,
    PARENT_CACHE,
    RoamingConfig,
    TopologyConfig,
)

SEEDS = [1, 2, 3]
MODES = [EAGER_PUSH, LAZY_PULL, PARENT_CACHE]
SCHEMES = ["aaw", "afw", "checking", "bs", "at", "sig", "ts", "gcore"]

#: Schemes the cooperative-salvage differential runs (the paper's
#: adaptive pair — the ones whose window reports a roamer's ``Tlb``
#: salvage leans on hardest).
COOP_SCHEMES = ["aaw", "afw"]

SIM_TIME = 4000.0
N_CLIENTS = 24

#: Sampled whole-cell outages: with MTBF 1500 s per cell over the full
#: horizon on four cells, every seed produces several outages
#: (asserted at scale 1.0).
STORM = dict(cell_crash_mtbf=1500.0, cell_downtime_mean=300.0)


def storm_params(
    *, seed, propagation, chaos, coop=True, horizon_scale=1.0, **overrides
):
    merged = dict(
        simulation_time=SIM_TIME * horizon_scale,
        n_clients=N_CLIENTS,
        db_size=500,
        uplink_timeout=8.0,
        strict_staleness=True,
        disconnect_prob=0.3,
        disconnect_time_mean=200.0,
        seed=seed,
        chaos=chaos,
        roaming=RoamingConfig(
            topology=TopologyConfig(kind="path", n_cells=4),
            propagation=propagation,
            roam_prob=0.3,
            sync_replay_intervals=10.0,
            cooperative_salvage=coop,
        ),
    )
    merged.update(overrides)
    return SystemParams(**merged)


def configure_storm(seed, mode, horizon_scale=1.0):
    # Rotate the scheme so each (seed, mode) cell exercises a different
    # policy family; over the seed set every family sees every mode.
    scheme = SCHEMES[(int(seed) * len(MODES) + MODES.index(mode)) % len(SCHEMES)]
    params = storm_params(
        seed=int(seed),
        propagation=mode,
        chaos=ChaosConfig(seed=int(seed), **STORM),
        horizon_scale=horizon_scale,
    )
    return params, scheme


#: The cooperative-salvage scenario: one scripted outage of (fed)
#: cell 2; its restart resyncs via a bounded-replay snapshot, leaving an
#: amnesia gap that long-dozing roamers' ``Tlb`` reports fall below.
#: Long doze times manufacture those roamers.
COOP_SCENARIO = dict(
    disconnect_prob=0.4,
    disconnect_time_mean=400.0,
)


def configure_coop(scheme, variant, horizon_scale=1.0):
    params = storm_params(
        seed=1,
        propagation=LAZY_PULL,
        chaos=ChaosConfig(
            seed=7,
            cell_crashes_at=((2, 1000.0 * horizon_scale),),
            cell_downtime=300.0 * horizon_scale,
        ),
        coop=(variant == "coop-on"),
        horizon_scale=horizon_scale,
        **COOP_SCENARIO,
    )
    return params, scheme


def run_storm(horizon_scale=1.0, workers="auto"):
    return run_loss_sweep(
        SEEDS,
        MODES,
        lambda seed, mode: configure_storm(seed, mode, horizon_scale),
        UNIFORM,
        workers=workers,
    )


def run_coop(horizon_scale=1.0, workers="auto"):
    return run_loss_sweep(
        COOP_SCHEMES,
        ["coop-on", "coop-off"],
        lambda scheme, variant: configure_coop(scheme, variant, horizon_scale),
        UNIFORM,
        workers=workers,
    )


# -- hard gates (event counts / liveness, never timing) --------------------


def check_storm_cell(key, r, full_scale=True):
    assert r.stale_hits == 0, key
    assert r.liveness_ok, (key, r.queries_pending)
    assert r.oracle_verdict == "SAFE", (key, r.oracle_verdict)
    assert r.counter("roam.handoffs") > 0, key
    if full_scale:
        # The storm actually happened: cells crashed and residents fled.
        assert r.counter("chaos.cell_crashes") > 0, key
        assert r.counter("roam.evacuations") > 0, key
    # Propagation ran in the configured mode (parent-cache pulls too).
    _seed, mode = key
    if mode == EAGER_PUSH:
        assert r.counter("sync.pushes") > 0, key
    else:
        assert r.counter("sync.pulls") > 0, key


def check_coop_sweep(results):
    """The differential claim: backfills reduce full purges, safely."""
    for key, r in results.items():
        assert r.stale_hits == 0, key
        assert r.oracle_verdict == "SAFE", (key, r.oracle_verdict)
    for scheme in COOP_SCHEMES:
        on = results[(scheme, "coop-on")]
        off = results[(scheme, "coop-off")]
        assert on.counter("coop.requests") > 0, scheme
        assert on.counter("coop.backfills") > 0, scheme
        assert (
            on.counter("cache.full_drops") < off.counter("cache.full_drops")
        ), (
            scheme,
            on.counter("cache.full_drops"),
            off.counter("cache.full_drops"),
        )


# -- pytest entry points ---------------------------------------------------


def test_roaming_storm_campaign(benchmark, capsys):
    results = benchmark.pedantic(run_storm, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_sweep_table(
                "roaming storm: seed vs propagation (answered/crashes/handoffs)",
                results,
                SEEDS,
                MODES,
                lambda r: (
                    f"{r.queries_answered:.0f}/"
                    f"{r.counter('chaos.cell_crashes'):.0f}/"
                    f"{r.counter('roam.handoffs'):.0f}"
                ),
                row_label="seed",
            )
        )
    for key, r in results.items():
        check_storm_cell(key, r)


def test_cooperative_salvage_differential(capsys):
    results = run_coop()
    with capsys.disabled():
        print()
        print(
            format_sweep_table(
                "cooperative salvage: scheme vs mode (answered/backfills/full-drops)",
                results,
                COOP_SCHEMES,
                ["coop-on", "coop-off"],
                lambda r: (
                    f"{r.queries_answered:.0f}/"
                    f"{r.counter('coop.backfills'):.0f}/"
                    f"{r.counter('cache.full_drops'):.0f}"
                ),
                row_label="scheme",
            )
        )
    check_coop_sweep(results)


# -- baseline emission -----------------------------------------------------


def _cell_record(r, scheme):
    return {
        "scheme": scheme,
        "queries_answered": int(r.queries_answered),
        "stale_hits": int(r.stale_hits),
        "oracle_verdict": r.oracle_verdict,
        "liveness_ok": bool(r.liveness_ok),
        "cell_crashes": int(r.counter("chaos.cell_crashes")),
        "evacuations": int(r.counter("roam.evacuations")),
        "handoffs": int(r.counter("roam.handoffs")),
        "sync_pushes": int(r.counter("sync.pushes")),
        "sync_pulls": int(r.counter("sync.pulls")),
        "sync_retries": int(r.counter("sync.retries")),
        "coop_requests": int(r.counter("coop.requests")),
        "coop_backfills": int(r.counter("coop.backfills")),
        "full_drops": int(r.counter("cache.full_drops")),
        "events_scheduled": int(r.counter("kernel.events_scheduled")),
    }


def collect_multicell_baseline(horizon_scale=1.0, workers="auto") -> dict:
    """Run both sweeps, gate them, and flatten into the ``results`` map."""
    full_scale = horizon_scale >= 1.0
    storm = run_storm(horizon_scale, workers)
    for key, r in storm.items():
        check_storm_cell(key, r, full_scale=full_scale)
    coop = run_coop(horizon_scale, workers)
    if full_scale:
        check_coop_sweep(coop)

    storm_rows = {}
    for (seed, mode), r in sorted(storm.items()):
        _params, scheme = configure_storm(seed, mode, horizon_scale)
        storm_rows[f"seed={seed}/{mode}"] = _cell_record(r, scheme)
    coop_rows = {
        f"{scheme}/{variant}": _cell_record(r, scheme)
        for (scheme, variant), r in sorted(coop.items())
    }
    savings = {
        scheme: {
            "full_drops_with_coop": int(
                coop[(scheme, "coop-on")].counter("cache.full_drops")
            ),
            "full_drops_without_coop": int(
                coop[(scheme, "coop-off")].counter("cache.full_drops")
            ),
            "backfills": int(coop[(scheme, "coop-on")].counter("coop.backfills")),
        }
        for scheme in COOP_SCHEMES
    }
    return {
        "storm": storm_rows,
        "cooperative_salvage": coop_rows,
        "coop_savings": savings,
    }


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_multicell.json")
    parser.add_argument("--horizon-scale", type=float, default=1.0)
    parser.add_argument("--workers", default="auto")
    parser.add_argument(
        "--force-backend",
        action="store_true",
        help="overwrite a baseline recorded under a different kernel backend",
    )
    args = parser.parse_args(argv)
    from perf_baseline import baseline_envelope, measure, write_baseline

    results, wall, _cpu = measure(
        collect_multicell_baseline, args.horizon_scale, args.workers, repeats=1
    )
    payload = baseline_envelope(
        "multicell_roaming",
        results,
        config={
            "horizon_scale": args.horizon_scale,
            "seeds": list(SEEDS),
            "propagation_modes": list(MODES),
            "schemes": list(SCHEMES),
            "coop_schemes": list(COOP_SCHEMES),
            "topology": {"kind": "path", "n_cells": 4},
            "storm": STORM,
            "sweep_wall_s": round(wall, 3),
        },
    )
    print(f"wrote {write_baseline(args.out, payload, args.force_backend)}")
    unsafe = [
        key
        for section in ("storm", "cooperative_salvage")
        for key, row in results[section].items()
        if row["oracle_verdict"] != "SAFE"
    ]
    print(
        f"  {len(results['storm'])} storm cells + "
        f"{len(results['cooperative_salvage'])} salvage cells in {wall:.1f}s "
        f"wall — {'all SAFE' if not unsafe else 'UNSAFE: ' + ', '.join(unsafe)}"
    )
    for scheme, row in results["coop_savings"].items():
        print(
            f"  {scheme}: full drops {row['full_drops_without_coop']} -> "
            f"{row['full_drops_with_coop']} with {row['backfills']} backfill(s)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
