"""Ablation — sensitivity to the broadcast window size ``w``.

The fixed window is the design parameter the adaptive schemes exist to
escape: small ``w`` makes TS-style coverage brittle (more checking
uploads / Tlb requests), large ``w`` bloats every report.  The paper's
Section 3 motivates AFW/AAW with exactly this trade-off.
"""

from repro.experiments.figures import scale_from_env
from repro.sim import SystemParams, UNIFORM, run_simulation

WINDOWS = (2, 5, 10, 20, 40)


def run_window_sweep():
    scale = scale_from_env()
    rows = {}
    for w in WINDOWS:
        params = SystemParams(
            simulation_time=scale.simulation_time,
            n_clients=scale.n_clients,
            db_size=10_000,
            disconnect_prob=0.2,
            disconnect_time_mean=300.0,
            window_intervals=w,
            seed=0,
        )
        rows[w] = {
            scheme: run_simulation(params, UNIFORM, scheme)
            for scheme in ("checking", "aaw")
        }
    return rows


def test_window_size_sensitivity(benchmark, capsys):
    rows = benchmark.pedantic(run_window_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("ablation: window size w sensitivity (UNIFORM, disc 300 s @ p=0.2)")
        print(f"  {'w':>4s} {'chk uplink/q':>14s} {'aaw uplink/q':>14s} "
              f"{'chk answered':>14s} {'aaw answered':>14s}")
        for w, row in rows.items():
            print(
                f"  {w:>4d} {row['checking'].uplink_cost_per_query:>14.2f} "
                f"{row['aaw'].uplink_cost_per_query:>14.2f} "
                f"{row['checking'].queries_answered:>14.0f} "
                f"{row['aaw'].queries_answered:>14.0f}"
            )

    # A wider window means fewer gaps escape it: validation uplink falls.
    chk = [rows[w]["checking"].uplink_cost_per_query for w in WINDOWS]
    aaw = [rows[w]["aaw"].uplink_cost_per_query for w in WINDOWS]
    assert chk[-1] < chk[0]
    assert aaw[-1] < aaw[0]
    # At every w the adaptive uplink stays far below checking.
    assert all(a < c / 5 for a, c in zip(aaw, chk) if c > 0)
