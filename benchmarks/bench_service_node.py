"""Service-node benchmark: the `CacheNode` façade on virtual time.

Three scenarios, each a deterministic virtual-time campaign through
:class:`repro.service.CacheNode` (same DES-backed driver as
tests/service/test_degradation_campaign.py, denser query schedule):

* ``steady``   — healthy feed and backend: hit/miss throughput;
* ``swr``      — stale-while-revalidate on: flagged stale serves and
  background refresh throughput;
* ``degraded`` — scripted IR-feed and L2 outages: served-stale /
  refusal / answer-age accounting across the degradation ladder.

Every hard assertion is an event-count or oracle check — never
wall-clock (shared runners throttle unpredictably); timings ride the
JSON payload as telemetry.  The strict-staleness oracle runs inside
every cell: an unflagged answer contradicted by the origin's update log
counts as a stale hit, and ``sweep_common.oracle_summary`` renders the
tally exactly as the simulator sweeps do.  Refresh the baseline with::

    PYTHONPATH=src python benchmarks/bench_service_node.py --out BENCH_service.json
"""

import asyncio

from sweep_common import format_sweep_table

from repro.chaos import OutageSchedule
from repro.des.rng import RandomStream
from repro.service import (
    CacheNode,
    FlakyBackend,
    FlakyBroker,
    InMemoryBackend,
    InMemoryBroker,
    NodeConfig,
    Origin,
    RetryConfig,
    ServiceError,
    ServiceParams,
    SWRConfig,
    VirtualClock,
)

PARAMS = ServiceParams(
    broadcast_interval=20.0,
    window_intervals=10,
    db_size=128,
    cache_capacity=64,
    seed=23,
)

RETRY = RetryConfig(attempts=2, base_delay=0.05, jitter=0.0, attempt_timeout=0.5)

HORIZON = 600.0
QUERY_STRIDE = 2.0
UPDATE_STRIDE = 9.0

SCENARIOS = ("steady", "swr", "degraded")
SCHEMES = ("ts", "checking", "aaw")

#: Per-scenario knobs: SWR timers and scripted outage windows.
SCENARIO_KNOBS = {
    "steady": dict(swr=None, ir_outage=None, l2_outage=None),
    "swr": dict(
        swr=SWRConfig(freshness_seconds=40.0, expiry_seconds=100_000.0),
        ir_outage=None,
        l2_outage=None,
    ),
    "degraded": dict(
        swr=None,
        ir_outage=(200.0, 320.0),  # 6 reports lost; gap < window
        l2_outage=(400.0, 450.0),
    ),
}


class ServiceCell:
    """One finished campaign, shaped for ``sweep_common``'s renderers."""

    def __init__(self, scenario, scheme):
        self.scenario = scenario
        self.scheme = scheme
        self.answers = 0
        self.l1_hits = 0
        self.l2_fetches = 0
        self.served_stale = 0
        self.refusals = 0
        self.swr_refreshes = 0
        self.feed_losses = 0
        self.reports_lost = 0
        self.breaker_trips = 0
        self.full_drops = 0
        self.age_sum = 0.0
        #: Unflagged answers contradicted by the origin's update log.
        self.stale_hits = 0

    @property
    def oracle_verdict(self):
        return "SAFE" if self.stale_hits == 0 else "STALE-HITS"

    @property
    def mean_age(self):
        return self.age_sum / self.answers if self.answers else 0.0

    def as_row(self):
        return {
            "answers": self.answers,
            "l1_hits": self.l1_hits,
            "l2_fetches": self.l2_fetches,
            "served_stale": self.served_stale,
            "refusals": self.refusals,
            "swr_refreshes": self.swr_refreshes,
            "feed_losses": self.feed_losses,
            "reports_lost": self.reports_lost,
            "breaker_trips": self.breaker_trips,
            "full_drops": self.full_drops,
            "mean_age_s": round(self.mean_age, 3),
            "stale_hits": self.stale_hits,
        }


def _times(offset, stride, horizon):
    out = []
    t = offset
    while t < horizon:
        out.append(round(t, 6))
        t += stride
    return out


async def _campaign(scenario, scheme, horizon):
    knobs = SCENARIO_KNOBS[scenario]
    # Outage windows ride the horizon so a scaled-down smoke run still
    # walks through both failures (the IR gap stays under the window).
    scale = horizon / HORIZON
    cell = ServiceCell(scenario, scheme)
    clock = VirtualClock()
    broker = InMemoryBroker()
    if knobs["ir_outage"] is not None:
        start, end = knobs["ir_outage"]
        broker = FlakyBroker(
            broker,
            clock,
            outage=OutageSchedule.scripted((start * scale, end * scale)),
        )
    origin = Origin(scheme, PARAMS, clock=clock, broker=broker)
    backend = InMemoryBackend(origin)
    if knobs["l2_outage"] is not None:
        start, end = knobs["l2_outage"]
        backend = FlakyBackend(
            backend,
            clock,
            outage=OutageSchedule.scripted((start * scale, end * scale)),
        )
    node = CacheNode(
        scheme,
        PARAMS,
        backend=backend,
        broker=broker,
        clock=clock,
        config=NodeConfig(retry=RETRY, deadline=0.5, swr=knobs["swr"]),
    )
    await node.start()
    origin_task = asyncio.get_running_loop().create_task(origin.run())

    queries = RandomStream(PARAMS.seed, "bench/queries")
    updates = RandomStream(PARAMS.seed, "bench/updates")
    events = sorted(
        [(t, "q") for t in _times(1.0, QUERY_STRIDE, horizon)]
        + [(t, "u") for t in _times(4.5, UPDATE_STRIDE, horizon)]
    )
    for t, kind in events:
        if clock.now() < t:
            await clock.run_until(t)
        if kind == "u":
            origin.apply_update(
                int(updates.uniform(0.0, PARAMS.db_size)) % PARAMS.db_size
            )
            continue
        item = int(queries.uniform(0.0, PARAMS.db_size)) % PARAMS.db_size
        try:
            answer = await clock.drive(node.get(item))
        except ServiceError:
            cell.refusals += 1
            continue
        cell.answers += 1
        cell.age_sum += answer.age
        if answer.stale:
            cell.served_stale += 1
        elif origin.update_log.updated_in(
            answer.item, after=answer.ts, up_to=answer.tlb
        ):
            cell.stale_hits += 1
        if answer.source in ("l1", "l1-swr", "l1-degraded"):
            cell.l1_hits += 1

    origin.stop()
    origin_task.cancel()
    cell.l2_fetches = int(node.metrics.get("get.l2_fetches"))
    cell.swr_refreshes = int(node.metrics.get("swr.refreshes"))
    cell.feed_losses = int(node.metrics.get("ir.feed_losses"))
    cell.breaker_trips = node.breaker.trips
    cell.full_drops = node.session.cache.full_drops
    cell.reports_lost = getattr(broker, "reports_lost", 0)
    await node.stop()
    return cell


def run_service_cell(scenario, scheme, horizon_scale: float = 1.0) -> ServiceCell:
    cell = asyncio.run(_campaign(scenario, scheme, HORIZON * horizon_scale))
    check_service(cell)
    return cell


def check_service(cell: ServiceCell):
    """Hard gates: event counts and the oracle — never timing."""
    assert cell.answers > 0, "no answers served"
    assert cell.l1_hits > 0, "cache never hit"
    assert cell.l2_fetches > 0, "backend never fetched"
    assert cell.stale_hits == 0, "oracle: unflagged stale answer served"
    if cell.scenario == "swr":
        assert cell.served_stale > 0, "SWR scenario served nothing stale"
        assert cell.swr_refreshes > 0, "SWR never refreshed in background"
    if cell.scenario == "degraded":
        assert cell.reports_lost > 0, "IR outage dropped nothing"
        assert cell.feed_losses >= 1, "watchdog never saw the feed loss"
        assert cell.served_stale + cell.refusals + cell.breaker_trips > 0, (
            "L2 outage left no trace"
        )


def collect_service_baseline(horizon_scale: float = 1.0, schemes=SCHEMES) -> dict:
    from perf_baseline import measure

    results = {}
    for scenario in SCENARIOS:
        for scheme in schemes:
            cell, wall, cpu = measure(
                run_service_cell, scenario, scheme, horizon_scale, repeats=1
            )
            row = cell.as_row()
            row.update(
                wall_s=round(wall, 6),
                cpu_s=round(cpu, 6),
                answers_per_sec_cpu=round(cell.answers / cpu, 1) if cpu else None,
            )
            results[f"{scenario}/{scheme}"] = row
    return results


# -- pytest entry points (CI perf-smoke runs exactly these) -----------------


def test_service_bench_smoke():
    """Every scenario completes with its failure modes actually felt."""
    for scenario in SCENARIOS:
        run_service_cell(scenario, "ts", horizon_scale=0.5)


def test_service_bench_counts_deterministic():
    """Same scenario, same seed, same event counts."""
    a = run_service_cell("degraded", "checking", horizon_scale=0.5)
    b = run_service_cell("degraded", "checking", horizon_scale=0.5)
    assert a.as_row() == b.as_row()


# -- baseline emission -----------------------------------------------------


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_service.json")
    parser.add_argument("--horizon-scale", type=float, default=1.0)
    parser.add_argument(
        "--schemes", nargs="+", default=list(SCHEMES), help="schemes per scenario"
    )
    parser.add_argument(
        "--force-backend",
        action="store_true",
        help="overwrite a baseline recorded under a different kernel backend",
    )
    args = parser.parse_args(argv)
    from perf_baseline import baseline_envelope, write_baseline

    cells = {}
    for scenario in SCENARIOS:
        for scheme in args.schemes:
            cells[(scenario, scheme)] = run_service_cell(
                scenario, scheme, args.horizon_scale
            )
    print(
        format_sweep_table(
            "service node: answers/stale/refused per campaign",
            cells,
            SCENARIOS,
            list(args.schemes),
            cell=lambda c: f"{c.answers}a/{c.served_stale}s/{c.refusals}r",
            row_label="mode",
        )
    )
    results = collect_service_baseline(
        horizon_scale=args.horizon_scale, schemes=tuple(args.schemes)
    )
    payload = baseline_envelope(
        "service",
        results,
        config={
            "horizon_scale": args.horizon_scale,
            "horizon": HORIZON,
            "query_stride": QUERY_STRIDE,
            "update_stride": UPDATE_STRIDE,
            "schemes": list(args.schemes),
            "scenarios": {
                name: {
                    k: (v if not isinstance(v, SWRConfig) else vars(v))
                    for k, v in knobs.items()
                }
                for name, knobs in SCENARIO_KNOBS.items()
            },
        },
    )
    print(f"wrote {write_baseline(args.out, payload, args.force_backend)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
