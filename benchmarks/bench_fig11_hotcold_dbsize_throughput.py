"""Figure 11 — HOTCOLD workload: queries answered vs database size.

Paper's findings: throughput is depressed while the database is small
enough that the 2 % cache cannot hold the 100-item hot region; beyond
that, checking leads, AAW comes second, AFW third and BS worst (falling
with database size as its reports grow).
"""

from repro.analysis import dominates, mostly_decreasing


def test_fig11_hotcold_dbsize_throughput(regen):
    result = regen("fig11")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    # db=1000 -> 20-item cache < 100-item hot region: depressed start.
    for series in (aaw, afw, checking):
        assert series[0] < 0.6 * series[1]

    # BS pays for its report size once the database grows.
    assert mostly_decreasing(bs[1:], slack=0.05)
    assert bs[-1] < 0.5 * bs[1]

    # Ordering among the rest (means over the post-depression sweep).
    def tail_mean(ys):
        return sum(ys[1:]) / len(ys[1:])

    assert tail_mean(checking) >= 0.97 * tail_mean(aaw)
    assert tail_mean(aaw) >= tail_mean(afw)
    assert dominates(aaw[1:], bs[1:], margin=1.0)
