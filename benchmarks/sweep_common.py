"""Shared harness for the loss-rate ablation benches.

``bench_ablation_fault_tolerance`` and ``bench_ablation_loss_adaptive``
both sweep a message-drop probability against a set of variants (a
scheme, or a scheme x adaptation mode), run one simulation per cell and
print a fixed-width table of the sweep.  Keeping the sweep loop and the
table rendering here means the two benches cannot drift apart in how
they run or report the same experiment.

Cells are independent deterministic simulations, so — like the figure
sweeps in :mod:`repro.experiments.parallel` — they fan out over a
process pool by default (``workers="auto"``); results are identical at
any worker count.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.experiments.parallel import resolve_workers, sweep_chunksize
from repro.sim import run_simulation


def _run_cell(cell):
    """Worker entry point (module-level so it pickles)."""
    key, params, scheme, workload = cell
    return key, run_simulation(params, workload, scheme)


def run_loss_sweep(drop_rates, variants, configure, workload, workers="auto"):
    """Run one simulation per ``(drop, variant)`` cell.

    *configure* maps ``(drop, variant) -> (params, scheme_name)``; the
    result dict is keyed by the same ``(drop, variant)`` pairs.  Cells
    fan out over *workers* processes (``"auto"`` = cpu_count); configure
    itself runs serially in the parent, so it may close over anything.
    """
    cells = []
    for drop in drop_rates:
        for variant in variants:
            params, scheme = configure(drop, variant)
            cells.append(((drop, variant), params, scheme, workload))
    n_workers = resolve_workers(workers)
    if n_workers == 1:
        results = map(_run_cell, cells)
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(
                pool.map(
                    _run_cell,
                    cells,
                    chunksize=sweep_chunksize(len(cells), n_workers),
                )
            )
    return dict(results)


def format_sweep_table(
    title, results, drop_rates, variants, cell, width=16, row_label="loss"
):
    """Render the sweep as rows of loss rate x variant columns.

    *cell* maps a :class:`SimulationResult` to the string shown in its
    table cell.  Row keys may be numbers (loss rates, seeds) or strings
    (scheme names); *row_label* names the row axis in the header.
    """
    lines = [title]
    lines.append(
        f"  {row_label:>6s} " + "".join(f"{str(v):>{width}s}" for v in variants)
    )
    for drop in drop_rates:
        row = "".join(
            f"{cell(results[(drop, v)]):>{width}s}" for v in variants
        )
        label = (
            f"{drop:>6.2f}"
            if isinstance(drop, (int, float))
            else f"{str(drop):>6s}"
        )
        lines.append(f"  {label} " + row)
    lines.append(oracle_summary(results))
    return "\n".join(lines)


def oracle_summary(results) -> str:
    """One line of safety-oracle accounting for a finished sweep.

    Sums stale cache hits and counts non-SAFE verdicts across every
    cell, so a consistency violation is visible in any bench output even
    when the table itself plots throughput.
    """
    stale = sum(r.stale_hits for r in results.values())
    unsafe = [
        f"{key}: {r.oracle_verdict}"
        for key, r in results.items()
        if r.oracle_verdict != "SAFE"
    ]
    verdict = "all cells SAFE" if not unsafe else "; ".join(unsafe)
    return f"  oracle: {stale:.0f} stale hits across {len(results)} cells — {verdict}"
