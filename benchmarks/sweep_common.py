"""Shared harness for the loss-rate ablation benches.

``bench_ablation_fault_tolerance`` and ``bench_ablation_loss_adaptive``
both sweep a message-drop probability against a set of variants (a
scheme, or a scheme x adaptation mode), run one simulation per cell and
print a fixed-width table of the sweep.  Keeping the sweep loop and the
table rendering here means the two benches cannot drift apart in how
they run or report the same experiment.
"""

from repro.sim import run_simulation


def run_loss_sweep(drop_rates, variants, configure, workload):
    """Run one simulation per ``(drop, variant)`` cell.

    *configure* maps ``(drop, variant) -> (params, scheme_name)``; the
    result dict is keyed by the same ``(drop, variant)`` pairs.
    """
    out = {}
    for drop in drop_rates:
        for variant in variants:
            params, scheme = configure(drop, variant)
            out[(drop, variant)] = run_simulation(params, workload, scheme)
    return out


def format_sweep_table(title, results, drop_rates, variants, cell, width=16):
    """Render the sweep as rows of loss rate x variant columns.

    *cell* maps a :class:`SimulationResult` to the string shown in its
    table cell.
    """
    lines = [title]
    lines.append(
        f"  {'loss':>6s} " + "".join(f"{str(v):>{width}s}" for v in variants)
    )
    for drop in drop_rates:
        row = "".join(
            f"{cell(results[(drop, v)]):>{width}s}" for v in variants
        )
        lines.append(f"  {drop:>6.2f} " + row)
    return "\n".join(lines)
