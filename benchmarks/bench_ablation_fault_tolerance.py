"""Ablation — fault tolerance: scheme throughput under wireless loss.

Sweeps a symmetric message-drop probability over both links (clients
retry with timeout + exponential backoff) and compares the invalidation
schemes.  Two lessons:

* *graceful degradation* — throughput falls with the loss rate but no
  scheme hangs or goes stale: every query terminates (answered or
  abandoned after bounded retries) and ``stale_hits`` stays zero on even
  a 30 %-loss medium;
* *recovery cost* — the retry layer converts loss into extra uplink
  traffic (retransmissions) and latency rather than correctness bugs.
"""

from repro.experiments.figures import scale_from_env
from repro.net import FaultConfig
from repro.sim import SystemParams, UNIFORM, run_simulation

DROP_RATES = [0.0, 0.05, 0.15, 0.30]
SCHEMES = ["ts", "at", "checking", "afw", "aaw"]


def run_loss_sweep():
    scale = scale_from_env()
    out = {}
    for drop in DROP_RATES:
        faults = FaultConfig(drop_prob=drop) if drop else None
        params = SystemParams(
            simulation_time=scale.simulation_time,
            n_clients=scale.n_clients,
            disconnect_prob=0.1,
            disconnect_time_mean=400.0,
            downlink_faults=faults,
            uplink_faults=faults,
            # The bench scale runs the downlink saturated (the paper's
            # throughput regime), where queueing alone reaches ~800 s;
            # the timeout must clear that or retries fire spuriously.
            uplink_timeout=1500.0,
            max_retries=4,
            seed=0,
        )
        for scheme in SCHEMES:
            out[(drop, scheme)] = run_simulation(params, UNIFORM, scheme)
    return out


def test_fault_tolerance_sweep(benchmark, capsys):
    results = benchmark.pedantic(run_loss_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("ablation: symmetric loss rate vs scheme (answered / retries)")
        print(f"  {'loss':>6s} " + "".join(f"{s:>16s}" for s in SCHEMES))
        for drop in DROP_RATES:
            cells = []
            for scheme in SCHEMES:
                r = results[(drop, scheme)]
                cells.append(
                    f"{r.queries_answered:>9.0f}/{r.retries:<6.0f}"
                )
            print(f"  {drop:>6.2f} " + "".join(cells))

    n_clients = scale_from_env().n_clients
    for (drop, scheme), r in results.items():
        # Exactness survives any loss rate.
        assert r.stale_hits == 0, (drop, scheme)
        # Liveness: every query terminated (at most one in flight per
        # client when the clock stops).
        in_flight = r.counter("queries.generated") - r.queries_answered
        assert 0 <= in_flight <= n_clients, (drop, scheme)
        if drop == 0.0:
            # Pristine medium: the retry layer never fires.
            assert r.retries == 0, scheme
            assert r.goodput_ratio == 1.0, scheme
        else:
            assert r.retries > 0, (drop, scheme)
            assert r.goodput_ratio < 1.0, (drop, scheme)

    # Loss hurts: heavy loss answers no more than the pristine medium
    # (small wiggle room for discrete-event noise).
    for scheme in SCHEMES:
        clean = results[(0.0, scheme)].queries_answered
        lossy = results[(0.30, scheme)].queries_answered
        assert lossy <= 1.02 * clean, scheme
