"""Ablation — fault tolerance: scheme throughput under wireless loss.

Sweeps a symmetric message-drop probability over both links (clients
retry with timeout + exponential backoff) and compares the invalidation
schemes, plus AFW/AAW with the loss-adaptive window layer enabled
(``afw+la`` / ``aaw+la``).  Three lessons:

* *graceful degradation* — throughput falls with the loss rate but no
  scheme hangs or goes stale: every query terminates (answered or
  abandoned after bounded retries) and ``stale_hits`` stays zero on even
  a 30 %-loss medium;
* *recovery cost* — the retry layer converts loss into extra uplink
  traffic (retransmissions) and latency rather than correctness bugs;
* *adaptation is free when clean* — with no loss the adaptive variants
  fire no retries and send no NACKs.

The dedicated win-margin claims (adaptive beats fixed at >= 5 % loss)
live in ``bench_ablation_loss_adaptive.py``, which runs the downlink-
loss regime the window law targets.
"""

from sweep_common import format_sweep_table, run_loss_sweep

from repro.experiments.figures import scale_from_env
from repro.net import FaultConfig
from repro.schemes import LossAdaptationConfig
from repro.sim import SystemParams, UNIFORM

DROP_RATES = [0.0, 0.05, 0.15, 0.30]
SCHEMES = ["ts", "at", "checking", "afw", "aaw"]
ADAPTIVE = ["afw+la", "aaw+la"]
VARIANTS = SCHEMES + ADAPTIVE


def configure(drop, variant):
    scale = scale_from_env()
    scheme, _, mode = variant.partition("+")
    faults = FaultConfig(drop_prob=drop) if drop else None
    params = SystemParams(
        simulation_time=scale.simulation_time,
        n_clients=scale.n_clients,
        disconnect_prob=0.1,
        disconnect_time_mean=400.0,
        downlink_faults=faults,
        uplink_faults=faults,
        # The bench scale runs the downlink saturated (the paper's
        # throughput regime), where queueing alone reaches ~800 s;
        # the timeout must clear that or retries fire spuriously.
        uplink_timeout=1500.0,
        max_retries=4,
        loss_adaptation=LossAdaptationConfig(w_max=40) if mode else None,
        seed=0,
    )
    return params, scheme


def run_fault_sweep():
    return run_loss_sweep(DROP_RATES, VARIANTS, configure, UNIFORM)


def test_fault_tolerance_sweep(benchmark, capsys):
    results = benchmark.pedantic(run_fault_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_sweep_table(
                "ablation: symmetric loss rate vs scheme (answered / retries)",
                results,
                DROP_RATES,
                VARIANTS,
                lambda r: f"{r.queries_answered:.0f}/{r.retries:.0f}",
            )
        )

    n_clients = scale_from_env().n_clients
    for (drop, variant), r in results.items():
        # Exactness survives any loss rate.
        assert r.stale_hits == 0, (drop, variant)
        # Liveness: every query terminated (at most one in flight per
        # client when the clock stops).
        in_flight = r.counter("queries.generated") - r.queries_answered
        assert 0 <= in_flight <= n_clients, (drop, variant)
        if drop == 0.0:
            # Pristine medium: the retry layer never fires, and the
            # adaptive variants send no NACKs (nothing is ever lost).
            assert r.retries == 0, variant
            assert r.goodput_ratio == 1.0, variant
            assert r.counter("client.ir_nacks") == 0, variant
        else:
            assert r.retries > 0, (drop, variant)
            assert r.goodput_ratio < 1.0, (drop, variant)

    # Loss hurts: heavy loss answers no more than the pristine medium
    # (small wiggle room for discrete-event noise).
    for variant in VARIANTS:
        clean = results[(0.0, variant)].queries_answered
        lossy = results[(0.30, variant)].queries_answered
        assert lossy <= 1.02 * clean, variant
