"""Figure 15 — asymmetric channels, UNIFORM: queries answered vs uplink
bandwidth.

Paper's finding: when the uplink shrinks below a few hundred bits per
second, the adaptive methods' tiny Tlb uploads beat checking's bulky
cache uploads on throughput; at ample uplink the methods converge.
"""

from repro.analysis import mostly_increasing


def test_fig15_asymmetric_uniform(regen):
    result = regen("fig15")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking = result.series["checking"]

    # Throughput rises with uplink bandwidth until the downlink binds.
    for series in (aaw, afw, checking):
        assert mostly_increasing(series, slack=0.05)

    # Below ~400 bps the adaptive methods clearly beat checking...
    for i in range(3):
        assert aaw[i] > 1.02 * checking[i]
        assert afw[i] > 1.02 * checking[i]
    # ... and they converge once the uplink is ample.
    assert abs(aaw[-1] - checking[-1]) / checking[-1] < 0.05
