"""Figure 12 — HOTCOLD workload: uplink validation cost vs database size.

Paper's finding: same picture as Figure 6 under locality — the adaptive
methods need only a few uplink bits per query, checking needs far more
(growing with id width), BS none at all.
"""

from repro.analysis import ratio_of_means


def test_fig12_hotcold_dbsize_uplink(regen):
    result = regen("fig12")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    assert max(bs) == 0.0
    assert max(max(aaw), max(afw)) < 50.0
    assert ratio_of_means(checking, aaw) > 5.0
    assert checking[-1] > checking[0]
