"""Figure 8 — UNIFORM workload: uplink validation cost vs disconnection
probability.

Paper's finding: more disconnections mean more salvage traffic for both
checking and the adaptive methods, but checking's full-cache uploads
dwarf the adaptive Tlb timestamps; AAW/AFW stay within a few bits per
query; BS never goes uplink.
"""

from repro.analysis import mostly_increasing, ratio_of_means


def test_fig08_uniform_discprob_uplink(regen):
    result = regen("fig08")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    assert max(bs) == 0.0
    # Costs grow with disconnection probability.
    assert mostly_increasing(aaw, slack=0.1)
    assert mostly_increasing(checking, slack=0.1)
    assert checking[-1] > 2 * checking[0]
    # Checking dwarfs the adaptive methods at every point.
    assert ratio_of_means(checking, aaw) > 20.0
    assert ratio_of_means(checking, afw) > 20.0
