"""Figure 13 — HOTCOLD workload: queries answered vs disconnection
probability.

Paper's finding: throughput declines as p grows (stronger than Figure
7's uniform case — with a hot cache the system is partly offered-load
bound, and disconnections cut the offered load); BS starts lowest where
the downlink is saturated.  At bench scale the decline is steeper than
the paper's (-57 % vs -23 % over the sweep) because the scaled run sits
deeper in the load-bound regime; direction and ordering match.
"""

from repro.analysis import mostly_decreasing


def test_fig13_hotcold_discprob_throughput(regen):
    result = regen("fig13")
    aaw, afw = result.series["aaw"], result.series["afw"]
    checking, bs = result.series["checking"], result.series["bs"]

    # Throughput falls with disconnection probability for every scheme.
    for series in (aaw, afw, checking, bs):
        assert mostly_decreasing(series, slack=0.02)
        assert series[-1] < 0.8 * series[0]

    # At the saturated end (p=0.1) BS pays its report-size tax; elsewhere
    # the load-bound regime compresses the gaps.
    assert bs[0] <= min(aaw[0], afw[0], checking[0])
    assert result.mean_of("checking") >= 0.97 * result.mean_of("aaw")
