"""Ablation — loss-adaptive IR windows and report repetition coding.

Sweeps a *downlink* drop probability (the regime the window law targets:
reports are lost on the air, the uplink still works) and compares, for
AFW and AAW, three window modes:

* ``fixed``    — the paper's ``IR(w)``, loss-oblivious;
* ``adapt``    — the loss-adaptive effective window ``w_eff in [w, w_max]``
  driven by NACK + salvage evidence;
* ``adapt+r2`` — the adaptive window plus each report broadcast twice
  (clients dedup by report timestamp).

The claim under test: at IR-loss rates >= 5 % the adaptive window beats
the fixed window on query throughput — a missed report no longer knocks
the client out of the window into the fragile two-round salvage
handshake (or a full cache drop) — and repetition coding stacks a
further win on top.  At zero loss all modes coincide (golden tests pin
bit-identity; here we check the throughput).  The cell is hot/cold with
a high hit ratio, where cache drops are expensive — the same regime the
paper uses for its Figure 13/14 comparisons.
"""

from sweep_common import format_sweep_table, run_loss_sweep

from repro.experiments.figures import scale_from_env
from repro.net import FaultConfig
from repro.schemes import LossAdaptationConfig
from repro.sim import HOTCOLD, SystemParams

DROP_RATES = [0.0, 0.05, 0.15, 0.30]
SCHEMES = ["afw", "aaw"]
MODES = {
    "fixed": None,
    "adapt": LossAdaptationConfig(w_max=40),
    "adapt+r2": LossAdaptationConfig(w_max=40, repeat=2),
}
VARIANTS = [f"{s}/{m}" for s in SCHEMES for m in MODES]


def configure(drop, variant):
    scale = scale_from_env()
    scheme, _, mode = variant.partition("/")
    params = SystemParams(
        simulation_time=scale.simulation_time,
        n_clients=scale.n_clients,
        db_size=1000,
        buffer_fraction=0.1,
        disconnect_prob=0.25,
        disconnect_time_mean=400.0,
        downlink_faults=FaultConfig(drop_prob=drop) if drop else None,
        uplink_timeout=400.0,
        max_retries=4,
        loss_adaptation=MODES[mode],
        seed=0,
    )
    return params, scheme


def run_adaptive_sweep():
    return run_loss_sweep(DROP_RATES, VARIANTS, configure, HOTCOLD)


def test_loss_adaptive_sweep(benchmark, capsys):
    results = benchmark.pedantic(run_adaptive_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_sweep_table(
                "ablation: IR loss vs window mode (answered / est. loss)",
                results,
                DROP_RATES,
                VARIANTS,
                lambda r: (
                    f"{r.queries_answered:.0f}/"
                    f"{r.estimated_ir_loss:.2f}"
                ),
                width=14,
            )
        )

    for (drop, variant), r in results.items():
        # Adaptation never trades staleness for throughput.
        assert r.stale_hits == 0, (drop, variant)
        assert 0.0 <= r.estimated_ir_loss <= 1.0, (drop, variant)

    for scheme in SCHEMES:
        for drop in DROP_RATES:
            fixed = results[(drop, f"{scheme}/fixed")]
            adapt = results[(drop, f"{scheme}/adapt")]
            repeat = results[(drop, f"{scheme}/adapt+r2")]
            if drop == 0.0:
                # Nothing lost, nothing to adapt to: the adaptive mode
                # matches the fixed window (NACK-free by construction).
                assert adapt.counter("client.ir_nacks") == 0
                assert adapt.queries_answered == fixed.queries_answered
            else:
                # The headline claim: at >= 5 % IR loss the adaptive
                # window beats the fixed one, and repetition beats both.
                assert adapt.queries_answered > fixed.queries_answered, (
                    scheme,
                    drop,
                )
                assert repeat.queries_answered > fixed.queries_answered, (
                    scheme,
                    drop,
                )
                # The estimator actually saw the loss...
                assert adapt.estimated_ir_loss > 0.0, (scheme, drop)
                # ...and widening reduced forced cache drops.
                assert adapt.counter("cache.full_drops") <= fixed.counter(
                    "cache.full_drops"
                ), (scheme, drop)
            # Repetition telemetry: r=2 repeats every report and the
            # dedup layer absorbs the copies that arrive intact.
            assert repeat.counter("server.ir_repeats") > 0, (scheme, drop)
            assert repeat.counter("client.ir_duplicates") > 0, (scheme, drop)
