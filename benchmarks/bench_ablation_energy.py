"""Ablation — client radio energy per query, by scheme.

The paper motivates everything with power efficiency ("the power needed
for transmission is proportional to the fourth power of the distance")
but reports packet counts, not joules.  This bench converts: with a
100:1 transmit/receive per-bit cost, where does each scheme's energy
actually go?

Expected: checking burns transmit energy on cache uploads; BS burns
receive energy listening to ~2N-bit reports; the adaptive schemes sit
near the combined minimum — the paper's thesis, in nanojoules.
"""

from repro.experiments.figures import scale_from_env
from repro.sim import SystemParams, UNIFORM, run_simulation
from repro.sim.energy import ENERGY_RX, ENERGY_TX, energy_per_query_nj

SCHEMES = ("aaw", "afw", "checking", "bs")


def run_energy_comparison():
    scale = scale_from_env()
    params = SystemParams(
        simulation_time=scale.simulation_time,
        n_clients=scale.n_clients,
        db_size=20_000,
        disconnect_prob=0.2,
        disconnect_time_mean=600.0,
        seed=0,
    )
    return {
        scheme: run_simulation(params, UNIFORM, scheme) for scheme in SCHEMES
    }


def test_energy_per_query(benchmark, capsys):
    results = benchmark.pedantic(run_energy_comparison, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("ablation: client radio energy (nJ/query; tx:rx = 100:1 per bit)")
        print(f"  {'scheme':>9s} {'tx nJ/q':>12s} {'rx nJ/q':>12s} "
              f"{'total nJ/q':>12s}")
        for scheme, r in results.items():
            answered = max(1.0, r.queries_answered)
            tx = r.counter(ENERGY_TX) / answered
            rx = r.counter(ENERGY_RX) / answered
            print(f"  {scheme:>9s} {tx:>12.0f} {rx:>12.0f} {tx + rx:>12.0f}")

    def validation_tx(scheme):
        return results[scheme].counter("uplink.validation_bits")

    def rx(scheme):
        return results[scheme].counter(ENERGY_RX)

    # Checking's validation uploads dominate every other scheme's.
    assert validation_tx("checking") > 10 * validation_tx("aaw")
    assert validation_tx("bs") == 0
    # BS makes clients listen to the biggest reports.
    assert rx("bs") > rx("checking")
    assert rx("bs") > rx("aaw")
    # The adaptive schemes' total energy per query beats both extremes'.
    totals = {s: energy_per_query_nj(results[s]) for s in SCHEMES}
    assert totals["aaw"] < totals["bs"]
    assert totals["aaw"] < totals["checking"]
