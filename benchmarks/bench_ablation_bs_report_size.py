"""Ablation — the Bit-Sequences report's size and its downlink share.

Verifies the Section 3.1 size formulas against the simulator's measured
downlink accounting: IR(BS) ~ 2N bits makes the report's share of the
broadcast channel grow linearly in N, which is the whole mechanism
behind Figure 5's BS collapse.
"""

from repro.experiments.figures import scale_from_env
from repro.reports import bitseq_report_bits, window_report_bits
from repro.sim import SystemParams, UNIFORM, run_simulation

DB_SIZES = (1000, 10_000, 40_000, 80_000)


def run_share_sweep():
    scale = scale_from_env()
    out = {}
    for n in DB_SIZES:
        params = SystemParams(
            simulation_time=scale.simulation_time,
            n_clients=scale.n_clients,
            db_size=n,
            disconnect_prob=0.1,
            disconnect_time_mean=400.0,
            seed=0,
        )
        out[n] = run_simulation(params, UNIFORM, "bs")
    return out


def test_bs_report_size_and_share(benchmark, capsys):
    results = benchmark.pedantic(run_share_sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print("ablation: IR(BS) size formula vs measured downlink share")
        print(f"  {'N':>7s} {'IR(BS) bits':>12s} {'vs IR(w,25)':>12s} "
              f"{'measured IR share':>18s}")
        for n, r in results.items():
            print(
                f"  {n:>7d} {bitseq_report_bits(n):>12.0f} "
                f"{bitseq_report_bits(n) / window_report_bits(25, n):>12.1f}x "
                f"{r.downlink_ir_share:>18.3f}"
            )

    sizes = [bitseq_report_bits(n) for n in DB_SIZES]
    shares = [results[n].downlink_ir_share for n in DB_SIZES]
    # Formula: ~2N growth.
    assert sizes[-1] / sizes[0] > 50
    # Measured: the share of the broadcast channel grows monotonically and
    # becomes dominant at 80k items (Figure 5's collapse mechanism).
    assert all(b > a for a, b in zip(shares, shares[1:]))
    assert shares[-1] > 0.5

    # Each broadcast interval must still fit the report with room for data:
    # at 80k items the report alone is >80% of an interval's bit budget.
    interval_bits = 10_000.0 * 20.0
    assert bitseq_report_bits(80_000) > 0.8 * interval_bits
