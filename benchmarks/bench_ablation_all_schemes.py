"""Ablation — every scheme (including the ones the paper excludes) on the
Figure 5/11 settings.

The paper's evaluation drops TS (no checking) and AT because "they are
not applicable to clients with long disconnections": both discard the
whole cache after any gap beyond their horizon.  This bench quantifies
that exclusion and exercises SIG and the GCORE-inspired grouped checking
as additional baselines.
"""

from repro.experiments import get_figure, run_figure, scale_from_env
from repro.experiments.tables import format_figure
from repro.schemes import available_schemes
from repro.sim.metrics import CACHE_DROPS


def test_all_schemes_on_fig05_settings(benchmark, capsys):
    spec = get_figure("fig05")
    scale = scale_from_env()
    schemes = sorted(available_schemes())
    result = benchmark.pedantic(
        lambda: run_figure(spec, scale=scale, points=[10_000, 40_000], schemes=schemes),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(format_figure(result))

    # The drop-everything schemes discard caches where BS/adaptive salvage.
    def drops(scheme):
        return sum(r.counter(CACHE_DROPS) for r in result.results[scheme])

    assert drops("ts") > 10 * max(1.0, drops("bs"))
    assert drops("at") >= drops("ts")  # AT's horizon is even shorter
    assert drops("aaw") < drops("ts")

    # Grouped checking spends less uplink than full checking.
    def uplink(scheme):
        return sum(r.uplink_cost_per_query for r in result.results[scheme])

    assert uplink("gcore") < uplink("checking")
    # ... but still far more than the adaptive Tlb uploads.
    assert uplink("gcore") > uplink("aaw")
